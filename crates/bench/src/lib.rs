//! Shared experiment harness for the paper's tables and figures.
//!
//! Every binary in `src/bin/` regenerates one table or figure; this library
//! holds the pieces they share: CLI parsing, dataset construction, model
//! factories, the method grid, and the train-and-evaluate pipeline.
//!
//! All experiments run on the synthetic presets calibrated to the paper's
//! Table I (see `lkp-data::synthetic` and DESIGN.md §2); `--scale` trades
//! fidelity for wall-clock time. The *shapes* being validated (which method
//! wins, rough improvement factors, S-vs-R and P-vs-NP orderings) are stable
//! across scales; absolute metric values are not expected to match the paper
//! since both the data and the hardware differ.

use lkp_core::baselines::{Bce, Bpr, S2SRank, SetRank, StandardDppObjective};
use lkp_core::objective::{LkpObjective, LkpRbfObjective};
use lkp_core::{
    train_diversity_kernel, DiversityKernelConfig, LkpVariant, TrainConfig, TrainReport, Trainer,
};
use lkp_data::{Dataset, SyntheticPreset, TargetSelection};
use lkp_dpp::LowRankKernel;
use lkp_eval::MetricSet;
use lkp_models::{Gcmc, Gcn, ItemEmbeddings, MatrixFactorization, NeuMf, Recommender};
use lkp_nn::AdamConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Metric cutoffs used in every table (the paper's N ∈ {5, 10, 20}).
pub const CUTOFFS: [usize; 3] = [5, 10, 20];

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Dataset scale relative to the paper's Table I sizes.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Maximum training epochs.
    pub epochs: usize,
    /// Embedding dimension (64 in the paper; smaller by default here).
    pub dim: usize,
    /// Ground-set k (paper default 5).
    pub k: usize,
    /// Ground-set n (paper default 5).
    pub n: usize,
    /// Evaluation threads.
    pub threads: usize,
    /// Verbose epoch logging.
    pub verbose: bool,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            scale: 0.01,
            seed: 17,
            epochs: 100,
            dim: 32,
            k: 5,
            n: 5,
            threads: 4,
            verbose: false,
        }
    }
}

impl ExpArgs {
    /// Parses `--key value` style flags from `std::env::args`.
    pub fn parse() -> Self {
        let mut args = ExpArgs::default();
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            let flag = argv[i].as_str();
            let value = argv.get(i + 1).cloned();
            let take = |name: &str| -> Option<String> {
                if flag == name {
                    value.clone()
                } else {
                    None
                }
            };
            if let Some(v) = take("--scale") {
                args.scale = v.parse().expect("--scale expects a float");
                i += 2;
            } else if let Some(v) = take("--seed") {
                args.seed = v.parse().expect("--seed expects an integer");
                i += 2;
            } else if let Some(v) = take("--epochs") {
                args.epochs = v.parse().expect("--epochs expects an integer");
                i += 2;
            } else if let Some(v) = take("--dim") {
                args.dim = v.parse().expect("--dim expects an integer");
                i += 2;
            } else if let Some(v) = take("--k") {
                args.k = v.parse().expect("--k expects an integer");
                i += 2;
            } else if let Some(v) = take("--n") {
                args.n = v.parse().expect("--n expects an integer");
                i += 2;
            } else if let Some(v) = take("--threads") {
                args.threads = v.parse().expect("--threads expects an integer");
                i += 2;
            } else if flag == "--verbose" {
                args.verbose = true;
                i += 1;
            } else if flag == "--help" {
                eprintln!(
                    "flags: --scale F --seed N --epochs N --dim N --k N --n N --threads N --verbose"
                );
                std::process::exit(0);
            } else {
                eprintln!("unknown flag {flag}; try --help");
                std::process::exit(2);
            }
        }
        args
    }

    /// Generates a preset dataset at the configured scale.
    pub fn dataset(&self, preset: SyntheticPreset) -> Dataset {
        preset.generate(self.scale, self.seed)
    }

    /// Pre-trains the diversity kernel for a dataset.
    pub fn diversity_kernel(&self, data: &Dataset) -> LowRankKernel {
        train_diversity_kernel(
            data,
            &DiversityKernelConfig {
                dim: 16,
                set_size: self.k.max(3),
                pairs_per_epoch: (data.n_users() * 2).clamp(64, 1024),
                epochs: 12,
                seed: self.seed ^ 0xD1FF,
                ..Default::default()
            },
        )
    }

    /// The trainer configuration for a given instance-construction mode.
    pub fn train_config(&self, mode: TargetSelection) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            batch_size: 64,
            k: self.k,
            n: self.n,
            mode,
            eval_every: 10,
            patience: 4,
            eval_cutoff: 10,
            threads: self.threads,
            seed: self.seed ^ 0x7EA1,
            verbose: self.verbose,
            ..Default::default()
        }
    }

    fn adam(&self) -> AdamConfig {
        AdamConfig {
            lr: 0.01,
            ..Default::default()
        }
    }

    /// Builds an MF backbone.
    pub fn mf(&self, data: &Dataset) -> MatrixFactorization {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x3F);
        MatrixFactorization::new(
            data.n_users(),
            data.n_items(),
            self.dim,
            self.adam(),
            &mut rng,
        )
    }

    /// Builds a GCN backbone over the dataset's train graph.
    pub fn gcn(&self, data: &Dataset) -> Gcn {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x6C);
        Gcn::new(
            data.n_users(),
            data.n_items(),
            &data.train_edges(),
            self.dim,
            2,
            self.adam(),
            &mut rng,
        )
    }

    /// Builds a NeuMF backbone.
    pub fn neumf(&self, data: &Dataset) -> NeuMf {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9A);
        NeuMf::new(
            data.n_users(),
            data.n_items(),
            self.dim,
            self.adam(),
            &mut rng,
        )
    }

    /// Builds a GCMC backbone over the dataset's train graph.
    pub fn gcmc(&self, data: &Dataset) -> Gcmc {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xC3);
        Gcmc::new(
            data.n_users(),
            data.n_items(),
            &data.train_edges(),
            self.dim.min(16),
            self.adam(),
            &mut rng,
        )
    }
}

/// The criteria that appear in the paper's comparison tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// One of the six LkP variants.
    Lkp(LkpVariant),
    /// Bayesian personalized ranking.
    Bpr,
    /// Binary cross-entropy.
    Bce,
    /// SetRank (Wang et al. 2020).
    SetRank,
    /// Set2SetRank (Chen et al. 2021).
    S2SRank,
    /// Standard-DPP normalization ablation (Section IV-B2).
    StdDpp,
}

impl Method {
    /// Row label as printed in the tables.
    pub fn name(self) -> &'static str {
        match self {
            Method::Lkp(v) => v.name(),
            Method::Bpr => "BPR",
            Method::Bce => "BCE",
            Method::SetRank => "SetRank",
            Method::S2SRank => "S2SRank",
            Method::StdDpp => "StdDPP",
        }
    }

    /// The instance-construction mode the method trains with.
    pub fn mode(self) -> TargetSelection {
        match self {
            Method::Lkp(v) => v.target_selection(),
            // Baselines have no ordering notion; Sequential matches how the
            // paper feeds them (every observed item once per epoch).
            _ => TargetSelection::Sequential,
        }
    }
}

/// Result of one train-and-evaluate run.
pub struct RunOutcome {
    /// Test-split metrics at [`CUTOFFS`].
    pub metrics: MetricSet,
    /// The training report (epochs, validation history).
    pub report: TrainReport,
}

/// Trains `method` on `model` and evaluates on the test split.
///
/// This is the generic path used for MF and GCN backbones (every method in
/// Tables II/III); NeuMF/GCMC reworks use [`run_on_model`] directly with
/// pre-built objectives.
pub fn run_method<M>(
    args: &ExpArgs,
    data: &Dataset,
    kernel: &LowRankKernel,
    model: &mut M,
    method: Method,
) -> RunOutcome
where
    M: Recommender + ItemEmbeddings + Clone + Sync,
{
    let trainer = Trainer::new(args.train_config(method.mode()));
    let report = match method {
        Method::Lkp(v) if v.uses_embedding_kernel() => {
            let mut obj = LkpRbfObjective::new(v.kind(), 1.0);
            trainer.fit(model, &mut obj, data)
        }
        Method::Lkp(v) => {
            let mut obj = LkpObjective::new(v.kind(), kernel.clone());
            trainer.fit(model, &mut obj, data)
        }
        Method::Bpr => trainer.fit(model, &mut Bpr, data),
        Method::Bce => trainer.fit(model, &mut Bce, data),
        Method::SetRank => trainer.fit(model, &mut SetRank, data),
        Method::S2SRank => trainer.fit(model, &mut S2SRank::default(), data),
        Method::StdDpp => {
            let mut obj = StandardDppObjective::new(kernel.clone());
            trainer.fit(model, &mut obj, data)
        }
    };
    let metrics = lkp_eval::evaluate_parallel(model, data, &CUTOFFS, args.threads);
    RunOutcome { metrics, report }
}

/// Trains a pre-built objective on a model lacking `ItemEmbeddings`
/// (NeuMF, GCMC) and evaluates on the test split.
pub fn run_on_model<M, O>(
    args: &ExpArgs,
    data: &Dataset,
    model: &mut M,
    objective: &mut O,
    mode: TargetSelection,
) -> RunOutcome
where
    M: Recommender + Clone + Sync,
    O: lkp_core::Objective<M>,
{
    let trainer = Trainer::new(args.train_config(mode));
    let report = trainer.fit(model, objective, data);
    let metrics = lkp_eval::evaluate_parallel(model, data, &CUTOFFS, args.threads);
    RunOutcome { metrics, report }
}

/// Prints the 13-column header used by Tables II–IV.
pub fn print_table_header() {
    println!(
        "{:<14} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "Method",
        "Re@5",
        "Re@10",
        "Re@20",
        "Nd@5",
        "Nd@10",
        "Nd@20",
        "CC@5",
        "CC@10",
        "CC@20",
        "F@5",
        "F@10",
        "F@20"
    );
}

/// Prints one metric row in the table layout.
pub fn print_table_row(label: &str, metrics: &MetricSet) {
    let mut cols = Vec::with_capacity(12);
    for get in [
        |m: &lkp_eval::Metrics| m.recall,
        |m: &lkp_eval::Metrics| m.ndcg,
        |m: &lkp_eval::Metrics| m.category_coverage,
        |m: &lkp_eval::Metrics| m.f_score,
    ] {
        for &c in &CUTOFFS {
            cols.push(format!(
                "{:>6.4}",
                get(metrics.at(c).expect("cutoff present"))
            ));
        }
    }
    println!("{label:<14} {}", cols.join(" "));
}

/// Percentage improvement of `ours` over `baseline`.
pub fn improvement_pct(ours: f64, baseline: f64) -> f64 {
    if baseline.abs() < 1e-12 {
        0.0
    } else {
        (ours - baseline) / baseline * 100.0
    }
}

/// The three presets in Table I/II/III/IV row order.
pub const PRESETS: [SyntheticPreset; 3] = [
    SyntheticPreset::Beauty,
    SyntheticPreset::MovieLens,
    SyntheticPreset::Anime,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names_are_unique() {
        let mut names: Vec<&str> = LkpVariant::ALL
            .iter()
            .map(|v| Method::Lkp(*v).name())
            .collect();
        names.extend(
            [
                Method::Bpr,
                Method::Bce,
                Method::SetRank,
                Method::S2SRank,
                Method::StdDpp,
            ]
            .map(Method::name),
        );
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn improvement_pct_math() {
        assert!((improvement_pct(1.2, 1.0) - 20.0).abs() < 1e-12);
        assert_eq!(improvement_pct(1.0, 0.0), 0.0);
    }

    #[test]
    fn smoke_tiny_experiment_end_to_end() {
        // A miniature Table III cell: train LkP-PS and BPR on MF and make
        // sure the pipeline produces sane metrics.
        let args = ExpArgs {
            scale: 0.003,
            epochs: 3,
            dim: 8,
            k: 3,
            n: 3,
            ..Default::default()
        };
        let data = args.dataset(SyntheticPreset::MovieLens);
        let kernel = args.diversity_kernel(&data);
        let mut mf = args.mf(&data);
        let out = run_method(&args, &data, &kernel, &mut mf, Method::Lkp(LkpVariant::Ps));
        let m = out.metrics.at(10).unwrap();
        assert!(m.ndcg >= 0.0 && m.ndcg <= 1.0);
        assert!(out.report.epochs_run >= 1);
    }
}
