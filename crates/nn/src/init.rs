//! Parameter initialization.

use lkp_linalg::Matrix;
use rand::Rng;

/// Standard normal via Box–Muller.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// `rows × cols` matrix with i.i.d. `N(0, std²)` entries.
pub fn normal_matrix<R: Rng + ?Sized>(rows: usize, cols: usize, std: f64, rng: &mut R) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| gaussian(rng) * std)
}

/// Xavier/Glorot uniform initialization for a `fan_out × fan_in` weight
/// matrix: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng + ?Sized>(fan_out: usize, fan_in: usize, rng: &mut R) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
    Matrix::from_fn(fan_out, fan_in, |_, _| {
        (rng.random::<f64>() * 2.0 - 1.0) * a
    })
}

/// He (Kaiming) normal initialization, suited to ReLU stacks:
/// `N(0, 2/fan_in)`.
pub fn he_normal<R: Rng + ?Sized>(fan_out: usize, fan_in: usize, rng: &mut R) -> Matrix {
    let std = (2.0 / fan_in as f64).sqrt();
    normal_matrix(fan_out, fan_in, std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_are_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier_uniform(32, 64, &mut rng);
        let a = (6.0 / 96.0_f64).sqrt();
        assert!(w.max_abs() <= a);
        assert!(w.max_abs() > a * 0.5, "suspiciously small spread");
    }

    #[test]
    fn he_normal_scale_tracks_fan_in() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = he_normal(1000, 50, &mut rng);
        let var = w.as_slice().iter().map(|x| x * x).sum::<f64>() / (w.rows() * w.cols()) as f64;
        assert!((var - 2.0 / 50.0).abs() < 0.01, "var {var}");
    }
}
