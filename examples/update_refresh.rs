//! Incremental model refresh end to end: a warm base fit, a stream of new
//! interactions, a delta-fit (`Trainer::update`) that freezes unchanged
//! users and carries their spectral-cache entries across the fit boundary,
//! and a zero-downtime landing in a live [`FrontendDriver`] via
//! [`RankingArtifact::refresh_from`] + `swap_artifact`.
//!
//! ```text
//! cargo run --release --example update_refresh
//! ```
//!
//! Four things are demonstrated and asserted:
//!
//! 1. **empty-delta no-op** — refreshing with no new interactions leaves
//!    the model bitwise untouched and serves bitwise the base artifact;
//! 2. **delta-fit economy** — a real delta freezes most instances (only
//!    changed users resample) and adopts the base fit's spectral entries,
//!    so revisits warm-start instead of re-decomposing;
//! 3. **per-generation fidelity** — the swapped refresh serves bitwise
//!    what a direct batch on the refreshed artifact serves;
//! 4. **zero post-swap assembly misses** — the swap stages every planned
//!    `(user, candidates)` pair warm, so post-swap traffic never rebuilds
//!    a kernel block.

use lkp::prelude::*;
use lkp::serve::CacheMode;
use rand::SeedableRng;
use std::time::Duration;

fn main() {
    let data = SyntheticConfig {
        n_users: 120,
        n_items: 300,
        n_categories: 10,
        mean_interactions: 18.0,
        seed: 33,
        ..Default::default()
    }
    .generate();

    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 5,
            pairs_per_epoch: 96,
            ..Default::default()
        },
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        24,
        AdamConfig::default(),
        &mut rng,
    );

    // The base fit captures a TrainedState: the merged dataset, the final
    // epoch plan (frozen negatives, so it is the plan every epoch trained
    // on), and the exported spectral-cache entries.
    let cfg = TrainConfig {
        epochs: 4,
        eval_every: 0,
        patience: 0,
        k: 4,
        n: 4,
        sampling_policy: SamplingPolicy::FrozenNegatives,
        spectral_tol: 1e-2,
        threads: 2,
        ..Default::default()
    };
    let mut objective = LkpObjective::new(LkpKind::NegativeAware, kernel.clone());
    let (_, base) = Trainer::new(cfg.clone()).fit_state(&mut model, &mut objective, &data);
    let artifact_v1 = RankingArtifact::from_trained(&model, &objective);
    println!(
        "base fit done: {} plan instances captured, {} spectral entries exported",
        base.plan().len(),
        base.spectral().len()
    );

    // An empty delta is a strict no-op: nothing trains, nothing moves.
    let mut untouched = model.clone();
    let noop = Trainer::new(cfg.clone()).update(
        &mut untouched,
        &mut LkpObjective::new(LkpKind::NegativeAware, kernel.clone()),
        &base,
        &DatasetDelta::new(),
    );
    assert!(noop.no_op, "empty delta must be a no-op");
    assert_eq!(noop.report.epochs_run, 0);
    println!("empty delta: no-op confirmed, zero epochs run");

    // Overnight traffic: one fresh interaction for every fifth user.
    let mut delta = DatasetDelta::new();
    for user in (0..data.n_users()).step_by(5) {
        for item in 0..data.n_items() {
            if !data.is_observed(user, item) {
                delta.push(user, item);
                break;
            }
        }
    }

    // The delta-fit: unchanged users keep their frozen plan records (and
    // their adopted spectral entries), changed users resample against the
    // merged dataset, and only `update_epochs` epochs run.
    let mut refreshed = model.clone();
    let rep = Trainer::new(TrainConfig {
        update_epochs: 2,
        update_rule: UpdateRule::Sgd,
        ..cfg.clone()
    })
    .update(
        &mut refreshed,
        &mut LkpObjective::new(LkpKind::NegativeAware, kernel.clone()),
        &base,
        &delta,
    );
    assert!(!rep.no_op);
    assert!(rep.frozen_instances > rep.fresh_instances);
    let stats = rep.report.spectral_cache;
    println!(
        "delta-fit: {} changed users, {} frozen / {} fresh instances, \
         {} spectral entries adopted ({} skips + {} warm starts on revisit)",
        rep.changed_users,
        rep.frozen_instances,
        rep.fresh_instances,
        rep.adopted_entries,
        stats.skips,
        stats.warm_starts
    );

    // The serving handoff: the refreshed model rides the *same* normalized
    // diversity kernel, so `refresh_from` clones it verbatim — per-user
    // kernel-cache contents stay valid across the swap.
    let artifact_v2 = artifact_v1.refresh_from(&refreshed);

    let pool_for = |user: usize| -> Vec<usize> {
        (0..40)
            .map(|j| (user * 53 + j * 29 + 11) % data.n_items())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect()
    };
    let stream: Vec<RankRequest> = (0..data.n_users())
        .map(|u| RankRequest::new(u, pool_for(u), 5))
        .collect();
    let plan: Vec<(usize, Vec<usize>)> = (0..data.n_users()).map(|u| (u, pool_for(u))).collect();

    let serve_config = ServeConfig {
        threads: 2,
        cache_mode: CacheMode::Sharded { shards: 4 },
        ..Default::default()
    };
    let want_v1 = Ranker::new(artifact_v1.clone(), serve_config.clone()).rank_batch(&stream);
    let want_v2 = Ranker::new(artifact_v2.clone(), serve_config.clone()).rank_batch(&stream);

    let mut frontend = ServeFrontend::new(
        Ranker::new(artifact_v1, serve_config),
        FrontendConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(1),
            queue_capacity: 64,
            ..Default::default()
        },
    );
    frontend.prewarm(&plan);
    let driver = FrontendDriver::spawn(frontend);

    // Generation 1 traffic, then the refresh lands under one bump.
    let client = driver.client();
    let gen1: Vec<_> = stream
        .iter()
        .map(|r| {
            let ticket = client.submit(r.clone()).expect("admitted");
            client
                .take_deadline(ticket, Duration::from_secs(30))
                .expect("served")
        })
        .collect();
    for (resp, want) in gen1.iter().zip(&want_v1) {
        assert_eq!(resp.generation, 1);
        assert_eq!(resp.items, want.items, "gen-1 drifted");
        assert_eq!(resp.log_det.to_bits(), want.log_det.to_bits());
    }

    let report = client.swap_artifact(artifact_v2, &plan);
    assert_eq!(report.generation, 2);
    assert_eq!(report.warmed, plan.len(), "every planned pair staged warm");
    println!(
        "refresh swapped in: generation {}, {} pairs prewarmed, \
         {} old entries retired, commit pause {:?}",
        report.generation, report.warmed, report.retired, report.commit_pause
    );

    // Post-swap traffic: bitwise the refreshed artifact, with zero kernel
    // assembly misses — every request hits the swap-staged cache.
    drop(client);
    let mut frontend = driver.shutdown().expect("all clients dropped");
    let (_, misses_before) = frontend.ranker().cache_stats();
    let tickets: Vec<_> = stream
        .iter()
        .map(|r| loop {
            // The bounded queue backpressures; without a pump thread the
            // example drains it inline.
            match frontend.try_submit(r.clone()) {
                Ok(ticket) => break ticket,
                Err(SubmitError::QueueFull { .. }) => {
                    frontend.flush();
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        })
        .collect();
    frontend.flush();
    let (_, misses_after) = frontend.ranker().cache_stats();
    assert_eq!(misses_after - misses_before, 0, "post-swap assembly miss");
    for (ticket, want) in tickets.iter().zip(&want_v2) {
        let resp = frontend.try_take(*ticket).expect("served");
        assert_eq!(resp.generation, 2);
        assert_eq!(resp.items, want.items, "gen-2 drifted");
        assert_eq!(resp.log_det.to_bits(), want.log_det.to_bits());
    }
    println!(
        "{} post-swap responses bitwise the refreshed artifact, \
         zero assembly misses ✓",
        stream.len()
    );

    for resp in want_v2.iter().take(3) {
        let cats: std::collections::BTreeSet<usize> =
            resp.items.iter().map(|&i| data.category(i)).collect();
        println!(
            "user {:>3} (refreshed): top-5 {:?}  ({} distinct categories, log_det {:.3})",
            resp.user,
            resp.items,
            cats.len(),
            resp.log_det
        );
    }
}
