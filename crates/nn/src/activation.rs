//! Element-wise activations with explicit backward passes.

/// Supported activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `max(0, x)`.
    ReLU,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// No-op (linear output layer).
    Identity,
}

impl Activation {
    /// Applies the activation in place.
    pub fn forward(self, x: &mut [f64]) {
        match self {
            Activation::ReLU => {
                for v in x {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            Activation::Sigmoid => {
                for v in x {
                    *v = lkp_linalg::ops::sigmoid(*v);
                }
            }
            Activation::Tanh => {
                for v in x {
                    *v = v.tanh();
                }
            }
            Activation::Identity => {}
        }
    }

    /// Multiplies `dy` by the activation Jacobian, given the *outputs* `y`
    /// of the forward pass (all supported activations have output-expressible
    /// derivatives).
    pub fn backward(self, y: &[f64], dy: &mut [f64]) {
        match self {
            Activation::ReLU => {
                for (d, &out) in dy.iter_mut().zip(y) {
                    if out <= 0.0 {
                        *d = 0.0;
                    }
                }
            }
            Activation::Sigmoid => {
                for (d, &out) in dy.iter_mut().zip(y) {
                    *d *= out * (1.0 - out);
                }
            }
            Activation::Tanh => {
                for (d, &out) in dy.iter_mut().zip(y) {
                    *d *= 1.0 - out * out;
                }
            }
            Activation::Identity => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(act: Activation, x: f64) -> f64 {
        let h = 1e-6;
        let mut plus = [x + h];
        let mut minus = [x - h];
        act.forward(&mut plus);
        act.forward(&mut minus);
        (plus[0] - minus[0]) / (2.0 * h)
    }

    #[test]
    fn backward_matches_finite_difference() {
        for act in [
            Activation::ReLU,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Identity,
        ] {
            for &x in &[-1.7, -0.3, 0.4, 2.1] {
                let mut y = [x];
                act.forward(&mut y);
                let mut dy = [1.0];
                act.backward(&y, &mut dy);
                let fd = finite_diff(act, x);
                assert!(
                    (dy[0] - fd).abs() < 1e-5,
                    "{act:?} at {x}: analytic {} vs fd {fd}",
                    dy[0]
                );
            }
        }
    }

    #[test]
    fn relu_zeroes_negatives() {
        let mut x = [-1.0, 0.0, 2.0];
        Activation::ReLU.forward(&mut x);
        assert_eq!(x, [0.0, 0.0, 2.0]);
    }

    #[test]
    fn sigmoid_range() {
        let mut x = [-100.0, 0.0, 100.0];
        Activation::Sigmoid.forward(&mut x);
        assert!(x[0] >= 0.0 && x[0] < 1e-10);
        assert!((x[1] - 0.5).abs() < 1e-12);
        assert!(x[2] > 1.0 - 1e-10 && x[2] <= 1.0);
    }
}
