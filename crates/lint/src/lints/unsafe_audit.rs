//! L4 `unsafe-audit`: every `unsafe` keyword — blocks, fns, impls, and
//! `unsafe fn` pointer types alike — must carry a written justification: a
//! `// SAFETY:` comment either trailing on the same line or in the
//! contiguous comment-only block directly above. Unlike L1–L3 this rule also
//! applies inside test code: a test's raw-pointer dance needs the same audit
//! trail as production's.

use super::token_matches;
use crate::{FileView, Finding, Lint};

const TAG: &str = "SAFETY:";

/// Runs L4 over one file (any file — there is no module scoping).
pub fn check(view: &FileView<'_>, findings: &mut Vec<Finding>) {
    let code = &view.scanned.code;
    let comments = &view.scanned.comments;
    for (idx, line) in code.iter().enumerate() {
        let hits = token_matches(line, "unsafe").len();
        if hits == 0 {
            continue;
        }
        if has_safety_comment(code, comments, idx) {
            continue;
        }
        for _ in 0..hits {
            findings.push(Finding {
                path: view.rel_path.to_string(),
                line: idx + 1,
                lint: Lint::UnsafeAudit,
                message: "`unsafe` without an immediately preceding `// SAFETY:` \
                          comment — write one on the line above (or trailing) \
                          explaining why the invariants hold"
                    .to_string(),
            });
        }
    }
}

/// Whether line `idx` is covered by a `SAFETY:` comment: on the line itself,
/// or anywhere in the unbroken run of comment-only lines directly above it.
fn has_safety_comment(code: &[String], comments: &[String], idx: usize) -> bool {
    if comments[idx].contains(TAG) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let comment_only = code[j].trim().is_empty() && !comments[j].trim().is_empty();
        if !comment_only {
            return false;
        }
        if comments[j].contains(TAG) {
            return true;
        }
    }
    false
}
