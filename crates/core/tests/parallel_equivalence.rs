//! Batch-parallel vs serial trainer equivalence.
//!
//! The trainer computes instance gradients concurrently but accumulates
//! them serially in instance order, so for a fixed seed the training
//! trajectory must be **bitwise reproducible** at any thread count. These
//! tests pin three properties: exact reproducibility run-to-run,
//! serial/parallel agreement on the smoke dataset (asserted at the ≤1e-9
//! acceptance tolerance, and in fact bit-for-bit), and — since the trainer
//! moved from per-batch `std::thread::scope` spawning onto the persistent
//! `lkp-runtime` pool — bitwise agreement between the retired scoped-thread
//! path (reconstructed below) and the pool path at every tested thread
//! count.

use lkp_core::objective::{InstanceGrad, LkpKind, LkpObjective, Objective};
use lkp_core::{train_diversity_kernel, DiversityKernelConfig, TrainConfig, Trainer};
use lkp_data::{Dataset, GroundSetInstance, InstanceSampler, SyntheticConfig, TargetSelection};
use lkp_dpp::DppWorkspace;
use lkp_models::{MatrixFactorization, Recommender};
use lkp_nn::AdamConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn smoke_data() -> Dataset {
    lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 40,
        n_items: 100,
        n_categories: 8,
        mean_interactions: 18.0,
        ..Default::default()
    })
}

fn model(data: &Dataset) -> MatrixFactorization {
    let mut rng = StdRng::seed_from_u64(1);
    MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        16,
        AdamConfig {
            lr: 0.02,
            ..Default::default()
        },
        &mut rng,
    )
}

fn config(threads: usize, epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 32,
        k: 4,
        n: 4,
        mode: TargetSelection::Sequential,
        eval_every: 0,
        patience: 0,
        threads,
        seed: 99,
        ..Default::default()
    }
}

/// Trains for `epochs` and returns (per-epoch mean losses, final scores of
/// user 0 over the full catalog).
fn run(data: &Dataset, threads: usize, epochs: usize) -> (Vec<f64>, Vec<f64>) {
    let mut m = model(data);
    let kernel = train_diversity_kernel(
        data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 48,
            dim: 8,
            ..Default::default()
        },
    );
    let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel);
    let trainer = Trainer::new(config(threads, epochs));
    let report = trainer.fit(&mut m, &mut obj, data);
    let losses = report.history.iter().map(|h| h.mean_loss).collect();
    let items: Vec<usize> = (0..data.n_items()).collect();
    use lkp_models::Recommender;
    (losses, m.score_items(0, &items))
}

#[test]
fn parallel_and_serial_trainers_agree_after_one_epoch() {
    let data = smoke_data();
    let (serial_losses, serial_scores) = run(&data, 1, 1);
    let (parallel_losses, parallel_scores) = run(&data, 4, 1);
    assert_eq!(serial_losses.len(), 1);
    // Acceptance tolerance ≤ 1e-9 on per-epoch mean loss…
    assert!(
        (serial_losses[0] - parallel_losses[0]).abs() <= 1e-9,
        "epoch mean loss diverged: serial {} vs parallel {}",
        serial_losses[0],
        parallel_losses[0]
    );
    // …and the implementation actually achieves bitwise equality, down to
    // every model parameter's effect on the scores.
    assert_eq!(serial_losses[0].to_bits(), parallel_losses[0].to_bits());
    for (a, b) in serial_scores.iter().zip(&parallel_scores) {
        assert_eq!(a.to_bits(), b.to_bits(), "model weights diverged");
    }
}

#[test]
fn losses_are_bitwise_reproducible_across_thread_counts() {
    let data = smoke_data();
    let epochs = 3;
    let (t1, _) = run(&data, 1, epochs);
    let (t2, _) = run(&data, 2, epochs);
    let (t4, _) = run(&data, 4, epochs);
    let (t7, _) = run(&data, 7, epochs); // uneven chunking
    for e in 0..epochs {
        assert_eq!(t1[e].to_bits(), t2[e].to_bits(), "epoch {e}: t1 vs t2");
        assert_eq!(t1[e].to_bits(), t4[e].to_bits(), "epoch {e}: t1 vs t4");
        assert_eq!(t1[e].to_bits(), t7[e].to_bits(), "epoch {e}: t1 vs t7");
    }
}

/// The retired pre-runtime batch computation, reproduced verbatim from the
/// PR 1 trainer: per-batch `std::thread::scope` fork-join, one owned
/// `DppWorkspace` per thread, disjoint gradient-slot chunks.
fn scoped_compute_batch(
    objective: &LkpObjective,
    model: &MatrixFactorization,
    batch: &[GroundSetInstance],
    workspaces: &mut [DppWorkspace],
    grads: &mut [InstanceGrad],
) {
    let grads = &mut grads[..batch.len()];
    if workspaces.len() == 1 || batch.len() == 1 {
        let ws = &mut workspaces[0];
        for (inst, out) in batch.iter().zip(grads.iter_mut()) {
            objective.compute_into(model, inst.as_ref(), ws, out);
        }
        return;
    }
    let chunk = batch.len().div_ceil(workspaces.len()).max(1);
    std::thread::scope(|scope| {
        for ((inst_chunk, grad_chunk), ws) in batch
            .chunks(chunk)
            .zip(grads.chunks_mut(chunk))
            .zip(workspaces.iter_mut())
        {
            scope.spawn(move || {
                for (inst, out) in inst_chunk.iter().zip(grad_chunk.iter_mut()) {
                    objective.compute_into(model, inst.as_ref(), ws, out);
                }
            });
        }
    });
}

/// The retired trainer loop around `scoped_compute_batch`: same sampling,
/// same Fisher–Yates shuffle, same serial in-order accumulation as
/// `Trainer::fit` (validation disabled, as in `config`).
fn run_scoped_reference(data: &Dataset, threads: usize, epochs: usize) -> (Vec<f64>, Vec<f64>) {
    let cfg = config(threads, epochs);
    let mut m = model(data);
    let kernel = train_diversity_kernel(
        data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 48,
            dim: 8,
            ..Default::default()
        },
    );
    let obj = LkpObjective::new(LkpKind::NegativeAware, kernel);
    let sampler = InstanceSampler::new(cfg.k, cfg.n, cfg.mode);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut workspaces: Vec<DppWorkspace> =
        (0..threads.max(1)).map(|_| DppWorkspace::new()).collect();
    let mut grads: Vec<InstanceGrad> = (0..cfg.batch_size)
        .map(|_| InstanceGrad::default())
        .collect();
    let mut losses = Vec::with_capacity(cfg.epochs);
    for _epoch in 1..=cfg.epochs {
        m.begin_epoch();
        let mut instances = sampler.epoch_instances(data, &mut rng);
        // The trainer's private shuffle: backwards Fisher–Yates over the
        // same rng stream.
        for i in (1..instances.len()).rev() {
            instances.swap(i, rng.random_range(0..=i));
        }
        let mut loss_sum = 0.0;
        let mut count = 0usize;
        for batch in instances.chunks(cfg.batch_size) {
            scoped_compute_batch(&obj, &m, batch, &mut workspaces, &mut grads);
            for grad in &grads[..batch.len()] {
                loss_sum += grad.loss;
                count += 1;
                obj.accumulate(&mut m, grad);
            }
            m.step();
        }
        losses.push(if count > 0 {
            loss_sum / count as f64
        } else {
            0.0
        });
    }
    let items: Vec<usize> = (0..data.n_items()).collect();
    (losses, m.score_items(0, &items))
}

#[test]
fn pool_path_matches_retired_scoped_thread_path_bitwise() {
    // Acceptance: the migration from per-batch scoped threads onto the
    // persistent pool must not move the training trajectory by a single bit
    // at any thread count — same losses, same final model weights.
    let data = smoke_data();
    let epochs = 2;
    for threads in [1usize, 2, 4, 7] {
        let (pool_losses, pool_scores) = run(&data, threads, epochs);
        let (scoped_losses, scoped_scores) = run_scoped_reference(&data, threads, epochs);
        assert_eq!(pool_losses.len(), scoped_losses.len());
        for (e, (a, b)) in pool_losses.iter().zip(&scoped_losses).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "threads={threads} epoch {e}: pool {a} vs scoped {b}"
            );
        }
        for (a, b) in pool_scores.iter().zip(&scoped_scores) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "threads={threads}: model diverged"
            );
        }
    }
}

#[test]
fn unified_thread_knob_steers_the_budget() {
    // The deprecated `train_threads`/`eval_threads` per-phase fields are
    // gone: `threads` is the single knob, clamped to at least one worker,
    // and the default budget stays at the historical 4.
    let unified = TrainConfig {
        threads: 5,
        ..Default::default()
    };
    assert_eq!(unified.thread_budget(), 5);
    let clamped = TrainConfig {
        threads: 0,
        ..Default::default()
    };
    assert_eq!(clamped.thread_budget(), 1);
    assert_eq!(TrainConfig::default().thread_budget(), 4);
}

#[test]
fn rerun_with_same_seed_is_deterministic() {
    let data = smoke_data();
    let (a, scores_a) = run(&data, 4, 2);
    let (b, scores_b) = run(&data, 4, 2);
    assert_eq!(
        a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    );
    assert_eq!(scores_a, scores_b);
}
