//! A fully-connected layer with explicit forward/backward.

use crate::optim::{AdamConfig, AdamState};
use lkp_linalg::Matrix;
use rand::Rng;

/// `y = W·x + b` with `W: out × in`.
///
/// Gradients are accumulated across calls to [`Dense::backward`] and applied
/// by [`Dense::step`]; this matches the mini-batch pattern used by the
/// trainer (accumulate per instance, step per batch).
#[derive(Debug, Clone)]
pub struct Dense {
    w: Matrix,
    b: Vec<f64>,
    grad_w: Matrix,
    grad_b: Vec<f64>,
    adam_w: AdamState,
    adam_b: AdamState,
}

impl Dense {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new<R: Rng + ?Sized>(
        out_dim: usize,
        in_dim: usize,
        config: AdamConfig,
        rng: &mut R,
    ) -> Self {
        Dense {
            w: crate::init::xavier_uniform(out_dim, in_dim, rng),
            b: vec![0.0; out_dim],
            grad_w: Matrix::zeros(out_dim, in_dim),
            grad_b: vec![0.0; out_dim],
            adam_w: AdamState::new(out_dim, in_dim, config),
            adam_b: AdamState::new(out_dim, 1, config),
        }
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.rows()
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.cols()
    }

    /// Borrow the weights (testing / inspection).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Forward pass for a single input vector.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.in_dim());
        let mut y = self.b.clone();
        for (r, yr) in y.iter_mut().enumerate() {
            *yr += lkp_linalg::ops::dot(self.w.row(r), x);
        }
        y
    }

    /// Backward pass: given the input `x` used in forward and the gradient
    /// `dy` at the output, accumulates parameter gradients and returns `dx`.
    pub fn backward(&mut self, x: &[f64], dy: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.in_dim());
        debug_assert_eq!(dy.len(), self.out_dim());
        let mut dx = vec![0.0; self.in_dim()];
        for (r, &d) in dy.iter().enumerate() {
            self.grad_b[r] += d;
            let wrow = self.w.row(r);
            let grow = self.grad_w.row_mut(r);
            for (c, (&xc, g)) in x.iter().zip(grow.iter_mut()).enumerate() {
                *g += d * xc;
                dx[c] += d * wrow[c];
            }
        }
        dx
    }

    /// Applies accumulated gradients (Adam) and clears them.
    pub fn step(&mut self) {
        self.adam_w.step_dense(&mut self.w, &self.grad_w);
        let gb = Matrix::from_vec(self.b.len(), 1, self.grad_b.clone());
        let mut b = Matrix::from_vec(self.b.len(), 1, self.b.clone());
        self.adam_b.step_dense(&mut b, &gb);
        self.b = b.into_vec();
        self.zero_grad();
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_w.scale(0.0);
        for g in &mut self.grad_b {
            *g = 0.0;
        }
    }

    /// Adjusts the learning rate.
    pub fn set_lr(&mut self, lr: f64) {
        self.adam_w.config_mut().lr = lr;
        self.adam_b.config_mut().lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer() -> Dense {
        let mut rng = StdRng::seed_from_u64(11);
        Dense::new(
            3,
            4,
            AdamConfig {
                lr: 0.02,
                weight_decay: 0.0,
                ..Default::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn forward_is_affine() {
        let l = layer();
        let x1 = [1.0, 0.0, -1.0, 2.0];
        let x2 = [0.5, 1.5, 0.0, -0.5];
        let y1 = l.forward(&x1);
        let y2 = l.forward(&x2);
        let sum: Vec<f64> = x1.iter().zip(&x2).map(|(a, b)| a + b).collect();
        let ysum = l.forward(&sum);
        // Affine: f(a) + f(b) - f(a+b) = b_bias (once).
        for r in 0..3 {
            let residual = y1[r] + y2[r] - ysum[r];
            assert!((residual - 0.0).abs() < 1e-12); // bias initialized to zero
        }
    }

    #[test]
    fn backward_input_gradient_matches_finite_difference() {
        let mut l = layer();
        let x = [0.3, -0.7, 1.1, 0.4];
        // Loss = sum(y).
        let dy = [1.0, 1.0, 1.0];
        let dx = l.backward(&x, &dy);
        let h = 1e-6;
        for i in 0..4 {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let fp: f64 = l.forward(&xp).iter().sum();
            let fm: f64 = l.forward(&xm).iter().sum();
            let fd = (fp - fm) / (2.0 * h);
            assert!((dx[i] - fd).abs() < 1e-6, "dim {i}: {} vs {fd}", dx[i]);
        }
    }

    #[test]
    fn training_fits_a_linear_target() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Dense::new(
            1,
            2,
            AdamConfig {
                lr: 0.05,
                weight_decay: 0.0,
                ..Default::default()
            },
            &mut rng,
        );
        // Target function y = 2 x0 - x1 + 0.5.
        let f = |x: &[f64]| 2.0 * x[0] - x[1] + 0.5;
        for epoch in 0..400 {
            let _ = epoch;
            for _ in 0..8 {
                let x = [
                    crate::init::gaussian(&mut rng),
                    crate::init::gaussian(&mut rng),
                ];
                let y = l.forward(&x);
                let err = y[0] - f(&x);
                l.backward(&x, &[err]);
            }
            l.step();
        }
        let x = [0.7, -0.3];
        let y = l.forward(&x);
        assert!(
            (y[0] - f(&x)).abs() < 0.05,
            "prediction {} vs {}",
            y[0],
            f(&x)
        );
    }

    #[test]
    fn step_clears_gradients() {
        let mut l = layer();
        l.backward(&[1.0; 4], &[1.0; 3]);
        l.step();
        let before = l.weights().clone();
        l.step(); // no accumulated grads: only weight-decay-free Adam drift on zero grad
                  // With zero gradient and zero weight decay, Adam's m decays toward 0
                  // but the first step after a real one can still move; assert movement
                  // is tiny rather than exactly zero.
        assert!(l.weights().max_abs_diff(&before) < 0.05);
    }
}
