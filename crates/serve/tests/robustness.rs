//! Robustness acceptance suite: failure isolation (panics, NaN scores,
//! poisoned diversity blocks), SLO expiry, admission shedding, degraded
//! mode, response TTL, and hot artifact swap under traffic.
//!
//! The isolation tests all follow the same discipline: inject exactly one
//! fault, pin that only the poisoned ticket reports it, and pin that every
//! sibling — same batch, any pool width — matches a clean-run baseline
//! **bitwise** (`log_det.to_bits()`), not approximately.

use lkp_core::objective::{LkpKind, LkpObjective};
use lkp_core::{train_diversity_kernel, DiversityKernelConfig, TrainConfig, Trainer};
use lkp_data::{Dataset, SyntheticConfig};
use lkp_dpp::LowRankKernel;
use lkp_models::{MatrixFactorization, Recommender};
use lkp_nn::AdamConfig;
use lkp_serve::{
    CacheMode, FrontendConfig, ManualClock, RankOutcome, RankRequest, RankResponse, Ranker,
    RankingArtifact, ServeConfig, ServeFrontend, SubmitError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn data() -> Dataset {
    lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 24,
        n_items: 70,
        n_categories: 7,
        mean_interactions: 14.0,
        ..Default::default()
    })
}

fn trained(data: &Dataset) -> (MatrixFactorization, LowRankKernel) {
    let kernel = train_diversity_kernel(
        data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 40,
            dim: 6,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(5);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        10,
        AdamConfig {
            lr: 0.02,
            ..Default::default()
        },
        &mut rng,
    );
    let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel.clone());
    let trainer = Trainer::new(TrainConfig {
        epochs: 2,
        eval_every: 0,
        patience: 0,
        k: 4,
        n: 4,
        threads: 2,
        ..Default::default()
    });
    trainer.fit(&mut model, &mut obj, data);
    (model, kernel)
}

fn requests(data: &Dataset, top_n: usize) -> Vec<RankRequest> {
    (0..data.n_users())
        .map(|u| {
            let candidates: Vec<usize> = (0..20)
                .map(|j| (u * 31 + j * 17 + 7) % data.n_items())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            RankRequest::new(u, candidates, top_n)
        })
        .collect()
}

fn assert_same(got: &RankResponse, want: &RankResponse, context: &str) {
    assert_eq!(got.user, want.user, "{context}: user");
    assert_eq!(got.items, want.items, "{context}: items");
    assert_eq!(
        got.log_det.to_bits(),
        want.log_det.to_bits(),
        "{context}: log_det"
    );
}

/// Runs `f` with the global panic hook silenced, so the *expected* injected
/// panics don't spew backtraces into the test output. The hook is global
/// per-process and tests run in parallel, so swaps are serialized.
fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let saved = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f();
    std::panic::set_hook(saved);
    result
}

/// A [`Recommender`] that delegates scoring to a trained model but injects
/// one fault per listed user: `panic_users` panic inside scoring (the
/// pool-side failure mode), `nan_users` return a NaN score (the numerical
/// failure mode). Every other user scores bit-identically to the inner
/// model, which is what makes sibling baselines comparable bitwise.
#[derive(Clone)]
struct FaultyModel {
    inner: MatrixFactorization,
    panic_users: Vec<usize>,
    nan_users: Vec<usize>,
}

impl FaultyModel {
    fn clean(inner: MatrixFactorization) -> Self {
        FaultyModel {
            inner,
            panic_users: Vec::new(),
            nan_users: Vec::new(),
        }
    }

    fn panicking(inner: MatrixFactorization, user: usize) -> Self {
        FaultyModel {
            inner,
            panic_users: vec![user],
            nan_users: Vec::new(),
        }
    }

    fn nan_scoring(inner: MatrixFactorization, user: usize) -> Self {
        FaultyModel {
            inner,
            panic_users: Vec::new(),
            nan_users: vec![user],
        }
    }
}

impl Recommender for FaultyModel {
    fn n_users(&self) -> usize {
        self.inner.n_users()
    }

    fn n_items(&self) -> usize {
        self.inner.n_items()
    }

    fn score_items(&self, user: usize, items: &[usize]) -> Vec<f64> {
        let mut out = Vec::new();
        self.score_items_into(user, items, &mut out);
        out
    }

    fn score_items_into(&self, user: usize, items: &[usize], out: &mut Vec<f64>) {
        if self.panic_users.contains(&user) {
            panic!("injected model fault for user {user}");
        }
        self.inner.score_items_into(user, items, out);
        if self.nan_users.contains(&user) {
            if let Some(s) = out.first_mut() {
                *s = f64::NAN;
            }
        }
    }

    fn accumulate_score_grads(&mut self, _user: usize, _items: &[usize], _dscores: &[f64]) {}

    fn step(&mut self) {}
}

fn faulty_ranker(
    model: FaultyModel,
    kernel: &LowRankKernel,
    threads: usize,
) -> Ranker<FaultyModel> {
    Ranker::new(
        RankingArtifact::snapshot(&model, kernel),
        ServeConfig {
            threads,
            ..Default::default()
        },
    )
}

/// Tentpole pillar 3a: a panicking request poisons only its own response
/// slot — siblings in the same batch are bitwise clean, and the *next*
/// batch on the same (unreplaced) pool is bitwise clean too, at widths
/// 1, 2, and 4.
#[test]
fn panicking_request_poisons_only_its_ticket() {
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 6);
    let bad = 7usize;

    let want = faulty_ranker(FaultyModel::clean(model.clone()), &kernel, 1).rank_batch(&reqs);

    quiet_panics(|| {
        for threads in [1usize, 2, 4] {
            let mut ranker =
                faulty_ranker(FaultyModel::panicking(model.clone(), bad), &kernel, threads);
            let got = ranker.rank_batch(&reqs);
            assert_eq!(got.len(), reqs.len());
            for (resp, clean) in got.iter().zip(want.iter()) {
                if resp.user == bad {
                    assert_eq!(resp.outcome, RankOutcome::Panicked, "width {threads}");
                    assert!(resp.items.is_empty(), "width {threads}: poisoned list");
                } else {
                    assert_eq!(resp.outcome, RankOutcome::Served, "width {threads}");
                    assert_same(resp, clean, &format!("width {threads} sibling"));
                }
            }
            // The pool barrier survived: the next batch on the same ranker
            // is healthy (and the poisoned user keeps failing — the fault
            // is deterministic, not a wedged worker).
            let again = ranker.rank_batch(&reqs);
            for (resp, clean) in again.iter().zip(want.iter()) {
                if resp.user == bad {
                    assert_eq!(resp.outcome, RankOutcome::Panicked);
                } else {
                    assert_same(resp, clean, &format!("width {threads} second batch"));
                }
            }
        }
    });
}

/// Tentpole pillar 3b: NaN quality scores fail only their own request with
/// [`RankOutcome::Failed`]; siblings are bitwise clean at every width.
#[test]
fn nan_scores_fail_only_their_request() {
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 6);
    let bad = 3usize;

    let want = faulty_ranker(FaultyModel::clean(model.clone()), &kernel, 1).rank_batch(&reqs);

    for threads in [1usize, 2, 4] {
        let mut ranker = faulty_ranker(
            FaultyModel::nan_scoring(model.clone(), bad),
            &kernel,
            threads,
        );
        let got = ranker.rank_batch(&reqs);
        for (resp, clean) in got.iter().zip(want.iter()) {
            if resp.user == bad {
                assert_eq!(resp.outcome, RankOutcome::Failed, "width {threads}");
                assert!(resp.items.is_empty(), "width {threads}: failed list");
                assert_eq!(resp.log_det, 0.0, "width {threads}: failed log_det");
            } else {
                assert_eq!(resp.outcome, RankOutcome::Served, "width {threads}");
                assert_same(resp, clean, &format!("width {threads} sibling"));
            }
        }
    }
}

/// Tentpole pillar 3c: a NaN diversity block (non-finite kernel rows) fails
/// only the requests whose candidates touch it. Candidate pools are made
/// disjoint so the clean users' submatrices are bit-identical between the
/// poisoned and clean kernels.
#[test]
fn nan_kernel_block_fails_only_touching_requests() {
    let data = data();
    let (model, kernel) = trained(&data);
    let poisoned_items: Vec<usize> = (60..70).collect();
    let bad = 0usize;

    // User 0 ranks only poisoned items; users 1..=8 rank only clean ones.
    let mut reqs = vec![RankRequest::new(bad, poisoned_items.clone(), 4)];
    for u in 1..=8usize {
        let candidates: Vec<usize> = (0..12).map(|j| (u * 5 + j) % 60).collect();
        reqs.push(RankRequest::new(u, candidates, 4));
    }

    let mut clean_ranker = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let want = clean_ranker.rank_batch(&reqs);
    assert!(want.iter().all(|r| r.outcome == RankOutcome::Served));

    let mut poisoned = kernel.clone();
    for &item in &poisoned_items {
        let row = poisoned.factor_mut().row_mut(item);
        row.fill(f64::NAN);
    }

    for threads in [1usize, 2, 4] {
        let mut ranker = Ranker::new(
            RankingArtifact::snapshot(&model, &poisoned),
            ServeConfig {
                threads,
                ..Default::default()
            },
        );
        let got = ranker.rank_batch(&reqs);
        for (resp, clean) in got.iter().zip(want.iter()) {
            if resp.user == bad {
                assert_eq!(
                    resp.outcome,
                    RankOutcome::Failed,
                    "width {threads}: NaN block must fail its request"
                );
                assert!(resp.items.is_empty(), "width {threads}: failed list");
            } else {
                assert_eq!(resp.outcome, RankOutcome::Served, "width {threads}");
                assert_same(resp, clean, &format!("width {threads} clean sibling"));
            }
        }
    }
}

/// SLO admission: a request still queued past its SLO at cut time completes
/// as [`RankOutcome::Expired`] without touching the pool; requests within
/// budget in the same cut serve bitwise normally, and a tight SLO pulls the
/// deadline cut *earlier* than `max_wait` so an in-budget request is served
/// just in time rather than expired.
#[test]
fn slo_expiry_sheds_only_late_requests() {
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 5);

    let mut direct = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let want = direct.rank_batch(&reqs);

    let clock = ManualClock::new();
    let mut frontend = ServeFrontend::with_clock(
        Ranker::new(
            RankingArtifact::snapshot(&model, &kernel),
            ServeConfig {
                threads: 2,
                ..Default::default()
            },
        ),
        FrontendConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(10),
            ..Default::default()
        },
        Box::new(clock.clone()),
    );

    // Tight-SLO request: due at 2 ms, well before max_wait.
    let t_tight = frontend.try_submit(reqs[0].clone().with_slo(Duration::from_millis(2)));
    let t_plain = frontend.try_submit(reqs[1].clone());
    let (t_tight, t_plain) = (t_tight.unwrap(), t_plain.unwrap());
    assert_eq!(
        frontend.time_to_next_cut(),
        Some(Duration::from_millis(2)),
        "tight SLO must pull the deadline cut earlier than max_wait"
    );

    // At exactly the SLO the cut serves the request just in time
    // (expiry is strictly `waited > slo`).
    clock.advance(Duration::from_millis(2));
    assert_eq!(frontend.pump(), 2);
    let tight = frontend.try_take(t_tight).expect("cut at its SLO");
    assert_eq!(tight.outcome, RankOutcome::Served);
    assert_same(&tight, &want[0], "just-in-time SLO");
    assert_same(
        &frontend.try_take(t_plain).expect("same cut"),
        &want[1],
        "no-SLO sibling",
    );

    // Now a request that is already past its SLO when the cut happens:
    // submitted with a 1 ms budget, cut 5 ms later by a sibling deadline.
    let t_late = frontend
        .try_submit(reqs[2].clone().with_slo(Duration::from_millis(1)))
        .unwrap();
    clock.advance(Duration::from_millis(1)); // t_late now due…
    let t_fresh = frontend.try_submit(reqs[3].clone()).unwrap();
    clock.advance(Duration::from_millis(4)); // …and 4 ms overdue at the cut.
    assert_eq!(frontend.pump(), 2);
    let late = frontend.try_take(t_late).expect("expired ticket redeems");
    assert_eq!(late.outcome, RankOutcome::Expired);
    assert_eq!(late.user, reqs[2].user);
    assert!(late.items.is_empty(), "expired requests are never served");
    let fresh = frontend.try_take(t_fresh).expect("sibling in the same cut");
    assert_eq!(fresh.outcome, RankOutcome::Served);
    assert_same(&fresh, &want[3], "in-budget sibling of an expired request");

    let stats = frontend.stats();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.served, 3, "expired requests are not counted served");
    assert_eq!(stats.latency.count(), 3, "latency samples = served only");
}

/// Admission control: `try_submit` sheds with a typed error at
/// `queue_capacity` without issuing a ticket, and the infallible `submit`
/// path still never sheds.
#[test]
fn try_submit_sheds_at_queue_capacity() {
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 4);

    let clock = ManualClock::new();
    let mut frontend = ServeFrontend::with_clock(
        Ranker::new(
            RankingArtifact::snapshot(&model, &kernel),
            ServeConfig {
                threads: 1,
                ..Default::default()
            },
        ),
        FrontendConfig {
            max_batch: 64,
            queue_capacity: 2,
            ..Default::default()
        },
        Box::new(clock.clone()),
    );

    let t0 = frontend.try_submit(reqs[0].clone()).unwrap();
    let t1 = frontend.try_submit(reqs[1].clone()).unwrap();
    assert_eq!(
        frontend.try_submit(reqs[2].clone()),
        Err(SubmitError::QueueFull { capacity: 2 }),
        "third submission must shed"
    );
    // The infallible path is exempt from admission (it cuts inline instead).
    let t2 = frontend.submit(reqs[2].clone());

    assert_eq!(frontend.flush(), 3);
    for t in [t0, t1, t2] {
        assert_eq!(
            frontend
                .try_take(t)
                .expect("accepted tickets serve")
                .outcome,
            RankOutcome::Served
        );
    }
    let stats = frontend.stats();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.submitted, 3, "shed requests are never admitted");
}

/// Degraded mode semantics, bottom-up: a direct request with
/// `rerank_head ≥ |C|` is bitwise the full path, and the frontend's
/// overload cap produces bitwise the same lists as direct requests carrying
/// the same head.
#[test]
fn degraded_mode_matches_direct_rerank_head() {
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 6);
    let head = 8usize;

    let mut direct = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let want_full = direct.rank_batch(&reqs);

    // head ≥ |C| is not a degradation: bitwise the full path.
    let wide: Vec<RankRequest> = reqs
        .iter()
        .map(|r| r.clone().with_rerank_head(r.candidates.len()))
        .collect();
    for (resp, clean) in direct.rank_batch(&wide).iter().zip(want_full.iter()) {
        assert!(!resp.degraded, "head ≥ |C| must not degrade");
        assert_same(resp, clean, "wide head");
    }

    // Direct baseline for the capped head.
    let capped: Vec<RankRequest> = reqs
        .iter()
        .map(|r| r.clone().with_rerank_head(head))
        .collect();
    let want_head = direct.rank_batch(&capped);
    for resp in &want_head {
        assert!(resp.degraded, "capped head is flagged");
        assert_eq!(resp.outcome, RankOutcome::Served);
        assert!(resp.items.len() <= head);
    }

    // Frontend overload path: watermark reached at the cut ⇒ the whole
    // batch runs with the capped head, bitwise equal to the direct capped
    // requests.
    let clock = ManualClock::new();
    let mut frontend = ServeFrontend::with_clock(
        Ranker::new(
            RankingArtifact::snapshot(&model, &kernel),
            ServeConfig {
                threads: 2,
                ..Default::default()
            },
        ),
        FrontendConfig {
            max_batch: reqs.len(),
            degrade_watermark: reqs.len(),
            degraded_head: head,
            ..Default::default()
        },
        Box::new(clock.clone()),
    );
    let tickets: Vec<_> = reqs
        .iter()
        .map(|r| frontend.try_submit(r.clone()).unwrap())
        .collect();
    assert_eq!(frontend.pump(), reqs.len(), "watermark batch cut full");
    for (ticket, clean) in tickets.iter().zip(want_head.iter()) {
        let resp = frontend.try_take(*ticket).expect("served");
        assert!(resp.degraded, "overload cut degrades the batch");
        assert_same(&resp, clean, "frontend degraded vs direct capped head");
    }
    assert_eq!(frontend.stats().degraded, reqs.len() as u64);

    // Below the watermark, the same frontend serves the full path again.
    let t = frontend.try_submit(reqs[0].clone()).unwrap();
    assert_eq!(frontend.flush(), 1);
    let resp = frontend.try_take(t).expect("served");
    assert!(!resp.degraded, "below watermark: no degradation");
    assert_same(&resp, &want_full[0], "recovered full path");
}

/// Satellite 1: unclaimed completed responses are swept once they outlive
/// `response_ttl`; claimed and young responses are untouched.
#[test]
fn response_ttl_sweeps_unclaimed_responses() {
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 4);

    let clock = ManualClock::new();
    let mut frontend = ServeFrontend::with_clock(
        Ranker::new(
            RankingArtifact::snapshot(&model, &kernel),
            ServeConfig {
                threads: 1,
                ..Default::default()
            },
        ),
        FrontendConfig {
            max_batch: 4,
            response_ttl: Duration::from_millis(5),
            ..Default::default()
        },
        Box::new(clock.clone()),
    );

    let abandoned = frontend.try_submit(reqs[0].clone()).unwrap();
    let claimed = frontend.try_submit(reqs[1].clone()).unwrap();
    frontend.flush();
    assert!(frontend.try_take(claimed).is_some());
    assert_eq!(frontend.completed_len(), 1);

    // Young responses survive a sweep; at the TTL they are dropped.
    clock.advance(Duration::from_millis(4));
    assert_eq!(frontend.sweep_responses(), 0);
    assert_eq!(frontend.completed_len(), 1);
    clock.advance(Duration::from_millis(1));
    assert_eq!(frontend.pump(), 0, "pump runs the sweep");
    assert_eq!(frontend.completed_len(), 0);
    assert!(
        frontend.try_take(abandoned).is_none(),
        "swept ticket is gone"
    );

    let stats = frontend.stats();
    assert_eq!(stats.ttl_expired, 1);
    assert_eq!(stats.discarded, 0, "TTL sweeps are not discards");
}

/// Tentpole pillar 4: hot artifact swap under traffic, in both cache modes.
/// Pre-swap responses are bitwise generation 1's artifact, post-swap
/// responses bitwise generation 2's; the prewarmed plan makes the first
/// post-swap batch hit the cache with zero assembly misses; retired
/// old-generation entries are reported.
#[test]
fn swap_under_traffic_is_bitwise_per_generation() {
    let data = data();
    let (model_a, kernel) = trained(&data);
    // A distinct second generation: fresh (untrained) embeddings are a
    // perfectly valid — and cheap — stand-in for a retrained model.
    let mut rng = StdRng::seed_from_u64(11);
    let model_b = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        10,
        AdamConfig::default(),
        &mut rng,
    );
    let reqs = requests(&data, 6);
    let plan: Vec<(usize, Vec<usize>)> = reqs
        .iter()
        .map(|r| (r.user, r.candidates.clone()))
        .collect();

    for cache_mode in [CacheMode::PerWorker, CacheMode::Sharded { shards: 4 }] {
        let config = ServeConfig {
            threads: 2,
            cache_mode,
            ..Default::default()
        };
        let mut ranker_a =
            Ranker::new(RankingArtifact::snapshot(&model_a, &kernel), config.clone());
        let want_a = ranker_a.rank_batch(&reqs);
        let mut ranker_b =
            Ranker::new(RankingArtifact::snapshot(&model_b, &kernel), config.clone());
        let want_b = ranker_b.rank_batch(&reqs);

        let clock = ManualClock::new();
        let mut frontend = ServeFrontend::with_clock(
            Ranker::new(RankingArtifact::snapshot(&model_a, &kernel), config.clone()),
            FrontendConfig {
                max_batch: reqs.len(),
                ..Default::default()
            },
            Box::new(clock.clone()),
        );
        assert_eq!(frontend.generation(), 1);

        // Generation 1 traffic (also populates the old cache, so the swap
        // has entries to retire).
        let tickets: Vec<_> = reqs
            .iter()
            .map(|r| frontend.try_submit(r.clone()).unwrap())
            .collect();
        frontend.flush();
        for (ticket, want) in tickets.iter().zip(want_a.iter()) {
            let resp = frontend.try_take(*ticket).expect("gen-1 ticket");
            assert_eq!(resp.generation, 1, "{cache_mode:?}");
            assert_same(&resp, want, &format!("{cache_mode:?} gen 1"));
        }

        // Queue traffic, then swap *between cuts*: the queued requests must
        // serve on the new generation.
        let queued: Vec<_> = reqs
            .iter()
            .map(|r| frontend.try_submit(r.clone()).unwrap())
            .collect();
        let report = frontend.swap_artifact(RankingArtifact::snapshot(&model_b, &kernel), &plan);
        assert_eq!(report.generation, 2, "{cache_mode:?}");
        assert_eq!(report.warmed, plan.len(), "{cache_mode:?}: plan fully warm");
        assert!(report.retired > 0, "{cache_mode:?}: old entries retired");
        assert_eq!(frontend.generation(), 2);
        assert_eq!(frontend.stats().swaps, 1);
        assert_eq!(frontend.swap_log().len(), 1);
        assert_eq!(frontend.swap_log()[0].report, report);

        let (_, misses_before) = frontend.ranker().cache_stats();
        frontend.flush();
        let (_, misses_after) = frontend.ranker().cache_stats();
        assert_eq!(
            misses_after - misses_before,
            0,
            "{cache_mode:?}: prewarmed post-swap batch must not miss"
        );
        for (ticket, want) in queued.iter().zip(want_b.iter()) {
            let resp = frontend.try_take(*ticket).expect("gen-2 ticket");
            assert_eq!(resp.generation, 2, "{cache_mode:?}");
            assert!(resp.cache_hit, "{cache_mode:?}: prewarmed hit");
            assert_same(&resp, want, &format!("{cache_mode:?} gen 2"));
        }
    }
}

/// The frontend's failure counters: one contained panic and one numerical
/// failure in a mixed batch count into `panicked` / `failed`, and every
/// sibling still serves bitwise clean.
#[test]
fn frontend_counts_contained_failures() {
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 5);
    let (panic_user, nan_user) = (2usize, 9usize);

    let want = faulty_ranker(FaultyModel::clean(model.clone()), &kernel, 2).rank_batch(&reqs);

    quiet_panics(|| {
        let faulty = FaultyModel {
            inner: model.clone(),
            panic_users: vec![panic_user],
            nan_users: vec![nan_user],
        };
        let mut frontend = ServeFrontend::with_clock(
            faulty_ranker(faulty, &kernel, 2),
            FrontendConfig {
                max_batch: reqs.len(),
                ..Default::default()
            },
            Box::new(ManualClock::new()),
        );
        let tickets: Vec<_> = reqs
            .iter()
            .map(|r| frontend.try_submit(r.clone()).unwrap())
            .collect();
        frontend.flush();
        for (ticket, clean) in tickets.iter().zip(want.iter()) {
            let resp = frontend.try_take(*ticket).expect("all tickets complete");
            match resp.user {
                u if u == panic_user => assert_eq!(resp.outcome, RankOutcome::Panicked),
                u if u == nan_user => assert_eq!(resp.outcome, RankOutcome::Failed),
                _ => {
                    assert_eq!(resp.outcome, RankOutcome::Served);
                    assert_same(&resp, clean, "sibling of contained failures");
                }
            }
        }
        let stats = frontend.stats();
        assert_eq!(stats.panicked, 1);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.served, reqs.len() as u64);
    });
}
