//! LU factorization with partial pivoting.
//!
//! Used for determinants and inverses of the small (`k+n`-sized) ground-set
//! kernel blocks, where the matrices are not necessarily positive definite
//! (e.g. gradient intermediates).

use crate::{LinalgError, Matrix, Result};

/// LU decomposition `P·A = L·U` with partial (row) pivoting.
///
/// `L` has unit diagonal and is stored together with `U` in a single packed
/// matrix, as is conventional.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed L (below diagonal, unit diagonal implicit) and U (upper triangle).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), used for the determinant.
    perm_sign: f64,
    /// True if a pivot underflowed to (near) zero.
    singular: bool,
}

/// Pivot magnitudes below this threshold are treated as singular.
const PIVOT_EPS: f64 = 1e-300;

impl Lu {
    /// Factorizes a square matrix. Returns an error for non-square input.
    ///
    /// Singular matrices factorize successfully (so [`Lu::det`] can return 0)
    /// but [`Lu::solve`] and [`Lu::inverse`] on them return
    /// [`LinalgError::Singular`].
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let mut singular = false;

        for k in 0..n {
            // Partial pivoting: pick the largest |entry| in column k at or below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for r in (k + 1)..n {
                let v = lu[(r, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < PIVOT_EPS {
                singular = true;
                continue;
            }
            if pivot_row != k {
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(pivot_row, c)];
                    lu[(pivot_row, c)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for r in (k + 1)..n {
                let factor = lu[(r, k)] / pivot;
                lu[(r, k)] = factor;
                for c in (k + 1)..n {
                    let delta = factor * lu[(k, c)];
                    lu[(r, c)] -= delta;
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
            singular,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Whether the factorization detected singularity.
    pub fn is_singular(&self) -> bool {
        self.singular
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        if self.singular {
            return 0.0;
        }
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// `(sign, log|det|)` of the original matrix; more robust than [`Lu::det`]
    /// for large dimensions.
    pub fn sign_log_det(&self) -> (f64, f64) {
        if self.singular {
            return (0.0, f64::NEG_INFINITY);
        }
        let mut sign = self.perm_sign;
        let mut log_det = 0.0;
        for i in 0..self.dim() {
            let d = self.lu[(i, i)];
            if d < 0.0 {
                sign = -sign;
            }
            log_det += d.abs().ln();
        }
        (sign, log_det)
    }

    /// Solves `A x = b` for a single right-hand side.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, 1),
                got: (b.len(), 1),
            });
        }
        if self.singular {
            return Err(LinalgError::Singular);
        }
        // Apply permutation, then forward substitution with unit-diagonal L.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut sum = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                sum -= self.lu[(i, j)] * xj;
            }
            x[i] = sum;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                sum -= self.lu[(i, j)] * xj;
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Inverse of the original matrix.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        if self.singular {
            return Err(LinalgError::Singular);
        }
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let col = self.solve(&e)?;
            for (r, &v) in col.iter().enumerate() {
                inv[(r, c)] = v;
            }
            e[c] = 0.0;
        }
        Ok(inv)
    }
}

/// Convenience: determinant of a square matrix via LU.
pub fn det(a: &Matrix) -> Result<f64> {
    Ok(Lu::new(a)?.det())
}

/// Convenience: inverse of a square matrix via LU.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    Lu::new(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_of_known_matrices() {
        let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        assert!((det(&a).unwrap() - -6.0).abs() < 1e-12);
        assert!((det(&Matrix::identity(5)).unwrap() - 1.0).abs() < 1e-12);
        let b = Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[0.0, 3.0, 0.0], &[0.0, 0.0, 4.0]]);
        assert!((det(&b).unwrap() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn det_of_singular_matrix_is_zero() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(det(&a).unwrap(), 0.0);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let x_true = [2.0, -1.0];
        let b = a.matvec(&x_true).unwrap();
        let x = Lu::new(&a).unwrap().solve(&b).unwrap();
        assert!((x[0] - x_true[0]).abs() < 1e-12);
        assert!((x[1] - x_true[1]).abs() < 1e-12);
    }

    #[test]
    fn solve_singular_errors() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let lu = Lu::new(&a).unwrap();
        assert!(lu.is_singular());
        assert!(matches!(lu.solve(&[1.0, 2.0]), Err(LinalgError::Singular)));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[2.0, -1.0, 0.5], &[1.0, 3.0, -2.0], &[0.0, 1.0, 1.0]]);
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-10);
    }

    #[test]
    fn sign_log_det_matches_det() {
        let a = Matrix::from_rows(&[&[1.0, 4.0], &[2.0, 3.0]]);
        let lu = Lu::new(&a).unwrap();
        let (sign, log_det) = lu.sign_log_det();
        assert!((sign * log_det.exp() - lu.det()).abs() < 1e-10);
    }

    #[test]
    fn non_square_rejected() {
        assert!(matches!(
            Lu::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((det(&a).unwrap() - -1.0).abs() < 1e-12);
        let x = Lu::new(&a).unwrap().solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }
}
