//! A small Rust source scanner: strips comments and string/char-literal
//! contents out of the code channel (so lint token matches can never fire on
//! documentation or literal text) while collecting the comment text per line
//! (where `// SAFETY:` justifications and `lint:allow` suppressions live).
//!
//! This is deliberately *not* a parser — the vendored-stub build environment
//! rules out `syn`/`proc-macro2` — but it is a real lexical pass: nested
//! block comments, raw strings (`r"…"`, `r#"…"#`, `br##"…"##`), escaped
//! quotes, byte/char literals, and lifetimes are all handled, so the
//! downstream analyzers see one clean "code" channel with source structure
//! (brace depth, statement boundaries) intact.

/// One file split into per-line code and comment channels. Both vectors have
/// one entry per source line; blanked spans keep their delimiters (`""`,
/// `' '`) so statement structure survives, but their contents are gone.
#[derive(Debug, Default)]
pub struct Scanned {
    /// Source lines with comments removed and literal contents blanked.
    pub code: Vec<String>,
    /// All comment text on each line (markers included, contents verbatim).
    pub comments: Vec<String>,
}

impl Scanned {
    /// Number of lines scanned.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the file was empty.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

enum Mode {
    Code,
    LineComment,
    BlockComment {
        depth: usize,
    },
    /// A string literal; `raw` carries the `#` count for raw strings
    /// (`None` = cooked string with escape processing).
    Str {
        raw: Option<usize>,
    },
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scans `src` into per-line code and comment channels.
pub fn scan(src: &str) -> Scanned {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Scanned::default();
    let mut code = String::new();
    let mut comment = String::new();
    let mut mode = Mode::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(mode, Mode::LineComment) {
                mode = Mode::Code;
            }
            out.code.push(std::mem::take(&mut code));
            out.comments.push(std::mem::take(&mut comment));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    mode = Mode::LineComment;
                    comment.push_str("//");
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment { depth: 1 };
                    comment.push_str("/*");
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Str { raw: None };
                    i += 1;
                } else if (c == 'r' || c == 'b')
                    && !code.chars().last().is_some_and(is_ident)
                    && raw_string_hashes(&chars, i).is_some()
                {
                    let (hashes, skip) = raw_string_hashes(&chars, i).expect("checked above");
                    if c == 'b' {
                        code.push('b');
                    }
                    code.push('"');
                    mode = Mode::Str { raw: Some(hashes) };
                    i += skip;
                } else if c == '\'' {
                    // Lifetime or char literal. An escape or a close quote
                    // two characters out means a literal; anything else
                    // (`'a`, `'_`, `'static`) is a lifetime marker.
                    if chars.get(i + 1) == Some(&'\\') {
                        code.push_str("' '");
                        i += 2;
                        while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                            i += 1;
                        }
                        if chars.get(i) == Some(&'\'') {
                            i += 1;
                        }
                    } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                        code.push_str("' '");
                        i += 3;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                comment.push(c);
                i += 1;
            }
            Mode::BlockComment { depth } => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    comment.push_str("*/");
                    if depth == 1 {
                        mode = Mode::Code;
                    } else {
                        mode = Mode::BlockComment { depth: depth - 1 };
                    }
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    comment.push_str("/*");
                    mode = Mode::BlockComment { depth: depth + 1 };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            Mode::Str { raw } => {
                match raw {
                    None => {
                        if c == '\\' {
                            i += 2; // escape: skip the escaped character
                        } else if c == '"' {
                            code.push('"');
                            mode = Mode::Code;
                            i += 1;
                        } else {
                            i += 1;
                        }
                    }
                    Some(hashes) => {
                        if c == '"' && (i + 1..=i + hashes).all(|j| chars.get(j) == Some(&'#')) {
                            code.push('"');
                            mode = Mode::Code;
                            i += 1 + hashes;
                        } else {
                            i += 1;
                        }
                    }
                }
            }
        }
    }
    out.code.push(code);
    out.comments.push(comment);
    out
}

/// If `chars[at..]` starts a raw string literal (`r"`, `r#"`, `br##"`, …),
/// returns `(hash_count, chars_to_skip_including_open_quote)`.
fn raw_string_hashes(chars: &[char], at: usize) -> Option<(usize, usize)> {
    let mut j = at;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j + 1 - at))
    } else {
        None
    }
}

/// Per-line brace depth: `starts[i]` is the depth at the beginning of line
/// `i`, computed from the code channel (string/comment braces never count).
pub fn brace_depths(code: &[String]) -> Vec<usize> {
    let mut starts = Vec::with_capacity(code.len());
    let mut depth = 0usize;
    for line in code {
        starts.push(depth);
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
    }
    starts
}

/// Marks the lines belonging to `#[cfg(test)]` / `#[test]` items. The
/// hot-path, lock-scope, and determinism lints skip these regions (test code
/// is not the hot path); the unsafe-audit lint does not.
pub fn test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut line = 0;
    while line < code.len() {
        let l = &code[line];
        if !(l.contains("#[cfg(test)]") || l.contains("#[test]")) {
            line += 1;
            continue;
        }
        // The attribute covers the next item: scan forward for its opening
        // `{`. A `;` first means a brace-less item (e.g. `#[cfg(test)] use
        // …;`) — nothing to mark.
        let mut depth = 0usize;
        let mut opened = false;
        let mut end = line;
        'outer: for (j, scan_line) in code.iter().enumerate().skip(line) {
            let start = if j == line {
                scan_line.find(']').map_or(0, |p| p + 1)
            } else {
                0
            };
            for c in scan_line[start..].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            end = j;
                            break 'outer;
                        }
                    }
                    ';' if !opened => {
                        end = j;
                        break 'outer;
                    }
                    _ => {}
                }
            }
            end = j;
        }
        if opened {
            for flag in in_test.iter_mut().take(end + 1).skip(line) {
                *flag = true;
            }
        }
        line = end + 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_leave_the_code_channel() {
        let s = scan("let x = 1; // Vec::new() in a comment\n");
        assert_eq!(s.code[0], "let x = 1; ");
        assert!(s.comments[0].contains("Vec::new()"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let s = scan("let s = \"Vec::new() .lock() unsafe\";\n");
        assert_eq!(s.code[0], "let s = \"\";");
        assert!(s.comments[0].is_empty());
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let s = scan(r#"let s = "a\"b unsafe \\"; let t = 1;"#);
        assert_eq!(s.code[0], r#"let s = ""; let t = 1;"#);
    }

    #[test]
    fn raw_strings_ignore_escapes() {
        let s = scan("let s = r#\"back\\slash \" inner\"#; let t = r\"x\\\";\n");
        assert_eq!(s.code[0], "let s = \"\"; let t = \"\";");
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let s = scan("a /* outer /* inner */ still */ b\n");
        assert_eq!(s.code[0].split_whitespace().collect::<Vec<_>>(), ["a", "b"]);
    }

    #[test]
    fn block_comments_span_lines() {
        let s = scan("before /* unsafe\n .lock() */ after\n");
        assert_eq!(s.code[0], "before ");
        assert_eq!(s.code[1], " after");
        assert!(s.comments[0].contains("unsafe"));
        assert!(s.comments[1].contains(".lock()"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let s = scan("fn f<'a>(x: &'a str) { let c = '{'; let d = '\\n'; }\n");
        assert_eq!(
            s.code[0],
            "fn f<'a>(x: &'a str) { let c = ' '; let d = ' '; }"
        );
        // The blanked `{` char literal must not skew brace depth.
        let depths = brace_depths(&s.code);
        assert_eq!(depths, vec![0, 0]);
    }

    #[test]
    fn byte_strings_are_blanked() {
        let s = scan("let b = b\"unsafe bytes\"; let r = br#\"raw \" bytes\"#;\n");
        assert_eq!(s.code[0], "let b = b\"\"; let r = b\"\";", "{:?}", s.code);
    }

    #[test]
    fn doc_comments_are_comments() {
        let s = scan("/// uses Vec::new() internally\nfn f() {}\n");
        assert_eq!(s.code[0], "");
        assert!(s.comments[0].contains("Vec::new()"));
        assert_eq!(s.code[1], "fn f() {}");
    }

    #[test]
    fn brace_depths_track_nesting() {
        let s = scan("fn f() {\n    if x {\n        y();\n    }\n}\n");
        assert_eq!(brace_depths(&s.code), vec![0, 1, 2, 2, 1, 0]);
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let s = scan(src);
        let regions = test_regions(&s.code);
        // (the trailing entry is the empty line after the final `\n`)
        assert_eq!(regions, vec![false, true, true, true, true, false, false]);
    }

    #[test]
    fn braceless_cfg_test_item_marks_nothing_beyond_itself() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {\n    body();\n}\n";
        let s = scan(src);
        let regions = test_regions(&s.code);
        assert!(regions.iter().all(|&r| !r), "{regions:?}");
    }

    #[test]
    fn test_attribute_marks_one_fn() {
        let src = "#[test]\nfn t() {\n    body();\n}\nfn live() {}\n";
        let s = scan(src);
        let regions = test_regions(&s.code);
        assert_eq!(regions, vec![true, true, true, true, false, false]);
    }
}
