//! The per-worker (lock-free) kernel-cache backend.

use super::{entry_bytes, evict_lru, CacheEntry, EntryForm, ShardStats};
use lkp_dpp::LowRankKernel;
use lkp_linalg::Matrix;
use std::collections::HashMap;

/// A bounded per-user cache of candidate-set kernel blocks (dense `K_C` or
/// factor `V_C`, see [`EntryForm`]), owned by one pool worker (no locks; see
/// the module docs for the shared-backend alternative).
///
/// Eviction is least-recently-used over a **byte** budget, and every call
/// shrinks the cache **down to** the current `budget` — so lowering the
/// budget of a long-lived cache takes effect on the next access instead of
/// leaving it permanently over its bound.
#[derive(Default)]
pub(crate) struct KernelCache {
    entries: HashMap<usize, CacheEntry>,
    /// Resident bytes across `entries` (kept in lockstep by fill/evict).
    bytes: usize,
    /// Build target when caching is disabled (`budget == 0`).
    uncached: Matrix,
    /// Eviction scratch: reused by [`evict_lru`], retains the pairs evicted
    /// by the most recent shrink (oldest first).
    evicted: Vec<(u64, usize)>,
    tick: u64,
    hits: u64,
    misses: u64,
    /// `budget == 0` passthrough builds — deliberate cache bypasses,
    /// counted separately so they cannot skew hit-rate reporting.
    bypasses: u64,
    /// Entries inserted by prewarming (not misses).
    prewarmed: u64,
}

impl KernelCache {
    /// Returns the kernel block for `(user, candidates)` in `form` and
    /// whether it was served from cache. `budget` is this worker's byte
    /// budget.
    pub(crate) fn get_or_build(
        &mut self,
        user: usize,
        candidates: &[usize],
        kernel: &LowRankKernel,
        budget: usize,
        form: EntryForm,
    ) -> (&Matrix, bool) {
        self.tick += 1;
        if budget == 0 {
            // Caching disabled: a deliberate bypass, not a miss — entries
            // from an earlier non-zero budget are dropped eagerly.
            self.bypasses += 1;
            self.entries.clear();
            self.bytes = 0;
            match form {
                EntryForm::Dense => kernel.submatrix_into(candidates, &mut self.uncached),
                EntryForm::Factor => kernel.gather_rows_into(candidates, &mut self.uncached),
            }
            .expect("candidates validated by caller");
            return (&self.uncached, false);
        }
        if let Some(entry) = self.entries.get_mut(&user) {
            if entry.candidates == candidates && entry.form == form {
                entry.last_used = self.tick;
                self.hits += 1;
                // The hit has the newest tick, so it survives the shrink at
                // any budget even if the budget was just lowered.
                evict_lru(
                    &mut self.entries,
                    &mut self.bytes,
                    budget,
                    &mut self.evicted,
                );
                let entry = &self.entries[&user];
                return (&entry.block, true);
            }
        }
        self.misses += 1;
        self.fill_entry(user, candidates, kernel, form);
        evict_lru(
            &mut self.entries,
            &mut self.bytes,
            budget,
            &mut self.evicted,
        );
        (&self.entries[&user].block, false)
    }

    /// (Re)builds `user`'s entry, keeping the byte ledger in lockstep.
    fn fill_entry(
        &mut self,
        user: usize,
        candidates: &[usize],
        kernel: &LowRankKernel,
        form: EntryForm,
    ) {
        let tick = self.tick;
        let entry = self.entries.entry(user).or_insert_with(CacheEntry::empty);
        let old = entry.bytes();
        entry.fill(candidates, kernel, form, tick);
        let new = entry.bytes();
        self.bytes = self.bytes - old + new;
    }

    /// Inserts `(user, candidates)` ahead of traffic. Counts as a prewarm,
    /// not a miss, and is strictly *monotone*: it only fills empty budget
    /// (touching an already-resident matching entry), never evicting or
    /// overwriting a resident entry — a full cache refuses new users and a
    /// resident user with a different pool keeps its pool. Anything else
    /// would silently break the "first request hits" guarantee for a pair
    /// an earlier prewarm already reported warmed. The prospective entry is
    /// sized *before* assembly, so a refusal costs `O(1)`. Returns whether
    /// the pair is warm (resident with exactly these candidates in `form`)
    /// when the call returns — built now or already resident; only fresh
    /// builds bump the `prewarmed` counter.
    pub(crate) fn prewarm(
        &mut self,
        user: usize,
        candidates: &[usize],
        kernel: &LowRankKernel,
        budget: usize,
        form: EntryForm,
    ) -> bool {
        if budget == 0 {
            return false;
        }
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&user) {
            if entry.candidates == candidates && entry.form == form {
                entry.last_used = self.tick;
                return true;
            }
            return false;
        }
        let need = entry_bytes(form, candidates.len(), kernel.dim());
        if self.bytes + need > budget {
            return false;
        }
        self.prewarmed += 1;
        self.fill_entry(user, candidates, kernel, form);
        true
    }

    /// Replaces this worker's resident set with a clone of `staged` (the
    /// prewarmed template of a new artifact generation), retiring every
    /// old-generation entry. Traffic counters (`hits`/`misses`/`bypasses`)
    /// survive the swap — they describe the worker's lifetime, not one
    /// generation — while `prewarmed` absorbs the template's count once per
    /// worker (each worker really does hold its own warm copy). The tick
    /// clock only moves forward so adopted `last_used` stamps stay ordered
    /// against future accesses. Returns how many entries were retired.
    pub(crate) fn adopt(&mut self, staged: &KernelCache) -> usize {
        let retired = self.entries.len();
        self.entries.clear();
        for (&user, entry) in &staged.entries {
            self.entries.insert(user, entry.clone());
        }
        self.bytes = staged.bytes;
        self.tick = self.tick.max(staged.tick);
        self.prewarmed += staged.prewarmed;
        retired
    }

    /// Full counter row for aggregate reporting. Disabled-cache
    /// passthroughs (`budget == 0`) are counted as `bypasses`, not
    /// misses, so a hit rate derived from the row reflects only lookups the
    /// cache was actually allowed to serve.
    pub(crate) fn shard_stats(&self) -> ShardStats {
        ShardStats {
            hits: self.hits,
            misses: self.misses,
            bypasses: self.bypasses,
            prewarmed: self.prewarmed,
            resident: self.entries.len(),
            resident_bytes: self.bytes,
        }
    }

    /// Resident users.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Resident bytes.
    #[cfg(test)]
    pub(crate) fn resident_bytes(&self) -> usize {
        self.bytes
    }

    /// The `(last_used, user)` pairs evicted by the most recent shrink, in
    /// eviction order (oldest first).
    #[cfg(test)]
    pub(crate) fn last_evicted(&self) -> &[(u64, usize)] {
        &self.evicted
    }

    /// Whether `user` is resident (any candidate list).
    #[cfg(test)]
    pub(crate) fn contains(&self, user: usize) -> bool {
        self.entries.contains_key(&user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> LowRankKernel {
        let v = Matrix::from_fn(300, 3, |r, c| (((r * 7 + c * 5) % 9) as f64) * 0.3 - 1.0);
        LowRankKernel::new(v).normalized()
    }

    /// Byte budget that fits exactly `n` dense entries of `c` candidates.
    fn dense_budget(n: usize, c: usize) -> usize {
        n * entry_bytes(EntryForm::Dense, c, 0)
    }

    #[test]
    fn hit_returns_bit_exact_matrix() {
        let kern = kernel();
        let mut cache = KernelCache::default();
        let cands = vec![1, 4, 7];
        let budget = dense_budget(4, 3);
        let (first, hit1) = cache.get_or_build(0, &cands, &kern, budget, EntryForm::Dense);
        let first = first.clone();
        assert!(!hit1);
        let (second, hit2) = cache.get_or_build(0, &cands, &kern, budget, EntryForm::Dense);
        assert!(hit2);
        assert_eq!(first.as_slice(), second.as_slice());
        let fresh = kern.submatrix(&cands).unwrap();
        assert_eq!(first.as_slice(), fresh.as_slice());
    }

    #[test]
    fn factor_hit_returns_bit_exact_rows() {
        let kern = kernel();
        let mut cache = KernelCache::default();
        let cands = vec![2, 9, 31, 4];
        let budget = 1 << 20;
        let (first, hit1) = cache.get_or_build(0, &cands, &kern, budget, EntryForm::Factor);
        assert!(!hit1);
        assert_eq!((first.rows(), first.cols()), (4, kern.dim()));
        let first = first.clone();
        let (second, hit2) = cache.get_or_build(0, &cands, &kern, budget, EntryForm::Factor);
        assert!(hit2);
        assert_eq!(first.as_slice(), second.as_slice());
        for (r, &i) in cands.iter().enumerate() {
            assert_eq!(first.row(r), kern.factor().row(i));
        }
    }

    #[test]
    fn form_flip_invalidates_entry() {
        // Same user, same candidates, other form: must rebuild, not serve
        // the wrong-shaped block.
        let kern = kernel();
        let mut cache = KernelCache::default();
        let cands = vec![1, 2, 3];
        let budget = 1 << 20;
        cache.get_or_build(0, &cands, &kern, budget, EntryForm::Dense);
        let (m, hit) = cache.get_or_build(0, &cands, &kern, budget, EntryForm::Factor);
        assert!(!hit);
        assert_eq!((m.rows(), m.cols()), (3, kern.dim()));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn changed_candidates_invalidate_entry() {
        let kern = kernel();
        let mut cache = KernelCache::default();
        let budget = dense_budget(4, 2);
        cache.get_or_build(0, &[1, 2], &kern, budget, EntryForm::Dense);
        let (m, hit) = cache.get_or_build(0, &[2, 3], &kern, budget, EntryForm::Dense);
        assert!(!hit);
        assert_eq!(m.as_slice(), kern.submatrix(&[2, 3]).unwrap().as_slice());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_keeps_cache_bounded_and_lru() {
        let kern = kernel();
        let mut cache = KernelCache::default();
        let budget = dense_budget(2, 1);
        cache.get_or_build(0, &[1], &kern, budget, EntryForm::Dense);
        cache.get_or_build(1, &[2], &kern, budget, EntryForm::Dense);
        // Touch user 0 so user 1 is the LRU.
        cache.get_or_build(0, &[1], &kern, budget, EntryForm::Dense);
        cache.get_or_build(2, &[3], &kern, budget, EntryForm::Dense);
        assert_eq!(cache.len(), 2);
        let (_, hit_user0) = cache.get_or_build(0, &[1], &kern, budget, EntryForm::Dense);
        assert!(hit_user0, "recently used entry must survive eviction");
        let (_, hit_user1) = cache.get_or_build(1, &[2], &kern, budget, EntryForm::Dense);
        assert!(!hit_user1, "LRU entry must have been evicted");
    }

    #[test]
    fn byte_budget_holds_more_factor_than_dense_entries() {
        // The satellite regression: with entry-count capacity a |C|×d factor
        // entry used to cost a |C|×|C| dense-entry slot. Under a byte budget
        // sized for 2 dense entries of 20 candidates, the same budget must
        // hold many 20×3 factor entries (3360 vs 544 bytes here).
        let kern = kernel();
        let budget = dense_budget(2, 20);
        let pool = |u: usize| -> Vec<usize> { (0..20).map(|i| (u * 20 + i) % 300).collect() };

        let mut dense = KernelCache::default();
        for u in 0..4 {
            dense.get_or_build(u, &pool(u), &kern, budget, EntryForm::Dense);
        }
        assert_eq!(dense.len(), 2, "budget fits exactly 2 dense entries");
        assert!(dense.resident_bytes() <= budget);

        let fits = budget / entry_bytes(EntryForm::Factor, 20, kern.dim());
        assert_eq!(fits, 10, "this budget holds 10 factor entries (vs 2 dense)");
        let mut factor = KernelCache::default();
        for u in 0..fits {
            factor.get_or_build(u, &pool(u), &kern, budget, EntryForm::Factor);
        }
        assert_eq!(
            factor.len(),
            fits,
            "no factor entry evicted under the budget"
        );
        assert!(factor.resident_bytes() <= budget);
        // All still hit — none was charged a dense-entry slot.
        for u in 0..fits {
            let (_, hit) = factor.get_or_build(u, &pool(u), &kern, budget, EntryForm::Factor);
            assert!(hit, "factor entry {u} must still be resident");
        }

        // Mixed residency: a dense entry coexists with factor entries as
        // long as the *bytes* fit, and evicting it frees its full size.
        let mut mixed = KernelCache::default();
        mixed.get_or_build(0, &pool(0), &kern, budget, EntryForm::Dense);
        let before = mixed.resident_bytes();
        for u in 1..=3 {
            mixed.get_or_build(u, &pool(u), &kern, budget, EntryForm::Factor);
        }
        assert_eq!(mixed.len(), 4, "dense + 3 factor fit the 2-dense budget");
        assert_eq!(
            mixed.resident_bytes(),
            before + 3 * entry_bytes(EntryForm::Factor, 20, kern.dim())
        );
    }

    #[test]
    fn zero_budget_disables_caching() {
        let kern = kernel();
        let mut cache = KernelCache::default();
        let (_, hit1) = cache.get_or_build(0, &[1, 2], &kern, 0, EntryForm::Dense);
        let (_, hit2) = cache.get_or_build(0, &[1, 2], &kern, 0, EntryForm::Dense);
        assert!(!hit1 && !hit2);
        assert_eq!(cache.len(), 0);
        // Deliberate bypasses must not read as misses in hit-rate stats.
        let stats = cache.shard_stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
        assert_eq!(stats.bypasses, 2);
        assert_eq!(stats.resident_bytes, 0);
    }

    #[test]
    fn lowering_budget_shrinks_an_over_full_cache() {
        let kern = kernel();
        let mut cache = KernelCache::default();
        let big = dense_budget(4, 2);
        let small = dense_budget(1, 2);
        for u in 0..4 {
            cache.get_or_build(u, &[u, u + 1], &kern, big, EntryForm::Dense);
        }
        assert_eq!(cache.len(), 4);
        // Budget lowered between calls: the next access (here a hit on
        // user 3) must evict down to the new bound, keeping the hit entry.
        let (_, hit) = cache.get_or_build(3, &[3, 4], &kern, small, EntryForm::Dense);
        assert!(hit, "the touched entry survives the shrink");
        assert_eq!(cache.len(), 1, "cache must come down to budget");
        // And a miss-path access under the lowered bound also stays bounded.
        cache.get_or_build(7, &[7, 8], &kern, small, EntryForm::Dense);
        assert_eq!(cache.len(), 1);
        let (_, hit7) = cache.get_or_build(7, &[7, 8], &kern, small, EntryForm::Dense);
        assert!(hit7, "the freshly inserted entry is the resident one");
    }

    #[test]
    fn sharp_budget_drop_evicts_in_one_pass_oldest_first() {
        // Regression: shrink used to rescan all entries once per eviction —
        // O(entries²) when the budget drops sharply. The one-pass path
        // must keep exactly the newest entries and report the evicted set
        // oldest-first. 256 entries → 4 is the shape from the bug report.
        let kern = kernel();
        let mut cache = KernelCache::default();
        let big = dense_budget(256, 1);
        for u in 0..256 {
            cache.get_or_build(u, &[u], &kern, big, EntryForm::Dense);
        }
        assert_eq!(cache.len(), 256);
        // The shrink happens on the next access; touch user 255 (a hit, so
        // it carries the newest tick) under the new bound.
        let (_, hit) = cache.get_or_build(255, &[255], &kern, dense_budget(4, 1), EntryForm::Dense);
        assert!(hit);
        assert_eq!(cache.len(), 4);
        // Survivors: the 4 newest ticks = users 253, 254, 255 (touched
        // twice) and 252 — insertion ticks were 1..=256, the touch is 257.
        for survivor in [252, 253, 254, 255] {
            assert!(cache.contains(survivor), "user {survivor} must survive");
        }
        // Eviction order: strictly ascending last_used ticks, i.e. users
        // 0, 1, …, 251 in insertion order.
        let evicted = cache.last_evicted().to_vec();
        assert_eq!(evicted.len(), 252);
        assert!(
            evicted.windows(2).all(|w| w[0].0 < w[1].0),
            "evictions must run oldest-first"
        );
        assert_eq!(
            evicted.iter().map(|&(_, u)| u).collect::<Vec<_>>(),
            (0..252).collect::<Vec<_>>()
        );
    }

    #[test]
    fn oversized_single_entry_stays_resident() {
        // One entry bigger than the whole budget: the newest entry is never
        // evicted (the hit path re-reads it after the shrink), so it stays —
        // alone — and the next distinct user displaces it.
        let kern = kernel();
        let mut cache = KernelCache::default();
        let tiny = 16; // smaller than any entry
        let (_, hit) = cache.get_or_build(0, &[1, 2, 3], &kern, tiny, EntryForm::Dense);
        assert!(!hit);
        assert_eq!(cache.len(), 1);
        let (_, hit0) = cache.get_or_build(0, &[1, 2, 3], &kern, tiny, EntryForm::Dense);
        assert!(hit0, "sole oversized entry still serves hits");
        cache.get_or_build(1, &[4, 5, 6], &kern, tiny, EntryForm::Dense);
        assert_eq!(cache.len(), 1, "newest entry displaced the oversized one");
        assert!(cache.contains(1));
    }

    #[test]
    fn toggling_budget_to_zero_drops_residents() {
        let kern = kernel();
        let mut cache = KernelCache::default();
        let budget = dense_budget(4, 2);
        cache.get_or_build(0, &[1, 2], &kern, budget, EntryForm::Dense);
        assert_eq!(cache.len(), 1);
        cache.get_or_build(0, &[1, 2], &kern, 0, EntryForm::Dense);
        assert_eq!(cache.len(), 0, "disabled cache must not retain entries");
        // Re-enabling starts cold.
        let (_, hit) = cache.get_or_build(0, &[1, 2], &kern, budget, EntryForm::Dense);
        assert!(!hit);
    }

    #[test]
    fn prewarm_inserts_without_counting_misses() {
        let kern = kernel();
        let mut cache = KernelCache::default();
        let budget = dense_budget(4, 2);
        assert!(cache.prewarm(3, &[1, 4], &kern, budget, EntryForm::Dense));
        // Re-prewarming a resident pair reports it warm without a second
        // assembly, and a resident user is never overwritten by a
        // different pool.
        assert!(cache.prewarm(3, &[1, 4], &kern, budget, EntryForm::Dense));
        assert!(!cache.prewarm(3, &[2, 6], &kern, budget, EntryForm::Dense));
        let stats = cache.shard_stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
        assert_eq!(stats.prewarmed, 1);
        // Traffic on the prewarmed pair is a pure hit.
        let (m, hit) = cache.get_or_build(3, &[1, 4], &kern, budget, EntryForm::Dense);
        assert!(hit);
        assert_eq!(m.as_slice(), kern.submatrix(&[1, 4]).unwrap().as_slice());
        let stats = cache.shard_stats();
        assert_eq!((stats.hits, stats.misses), (1, 0));
        // Disabled cache ignores prewarm.
        assert!(!cache.prewarm(9, &[2], &kern, 0, EntryForm::Dense));
    }

    #[test]
    fn prewarm_overflow_refuses_instead_of_evicting() {
        // A plan larger than the budget must warm a prefix and keep it —
        // not churn the warm set so that *no* pair survives.
        let kern = kernel();
        let mut cache = KernelCache::default();
        let budget = dense_budget(3, 2);
        let warmed = (0..8)
            .filter(|&u| cache.prewarm(u, &[u, u + 1], &kern, budget, EntryForm::Dense))
            .count();
        assert_eq!(warmed, 3, "only the first `budget / entry` pairs fit");
        assert_eq!(cache.len(), 3);
        for u in 0..3 {
            let (_, hit) = cache.get_or_build(u, &[u, u + 1], &kern, budget, EntryForm::Dense);
            assert!(hit, "accepted pair {u} must keep its first-request hit");
        }
    }

    #[test]
    fn prewarm_refusal_is_sized_before_assembly() {
        // A factor prewarm fits where a dense one refuses: the byte check
        // uses the prospective entry's form.
        let kern = kernel();
        let mut cache = KernelCache::default();
        let cands: Vec<usize> = (0..20).collect();
        let budget = entry_bytes(EntryForm::Factor, 20, kern.dim()) + 8;
        assert!(!cache.prewarm(0, &cands, &kern, budget, EntryForm::Dense));
        assert!(cache.prewarm(0, &cands, &kern, budget, EntryForm::Factor));
        assert_eq!(cache.len(), 1);
    }
}
