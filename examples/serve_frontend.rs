//! The async serving frontend: requests submitted one at a time, cut into
//! micro-batches, served from a sharded cross-worker kernel cache that was
//! pre-warmed with the plan of popular `(user, candidate-set)` pairs.
//!
//! ```text
//! cargo run --release --example serve_frontend
//! ```
//!
//! This is the full production shape of the paper's product: train once,
//! freeze an artifact, then serve a skewed request stream — a hot set of
//! users generating most traffic — through [`ServeFrontend`]. Three things
//! are demonstrated and asserted:
//!
//! 1. micro-batched frontend output is **bitwise identical** to direct
//!    batching (batch composition can never change a served list),
//! 2. the hot users' prewarmed pairs serve their first request with zero
//!    `O(|C|²·d)` kernel assemblies,
//! 3. the sharded cache mode serves the same lists as the per-worker mode
//!    while assembling each user's kernel once per process, not once per
//!    worker.

use lkp::prelude::*;
use lkp::serve::{CacheMode, FrontendConfig, ManualClock, ServeFrontend, Ticket};
use rand::SeedableRng;
use std::time::Duration;

fn main() {
    // A compact world so the example runs in seconds.
    let data = SyntheticConfig {
        n_users: 150,
        n_items: 400,
        n_categories: 10,
        mean_interactions: 18.0,
        seed: 33,
        ..Default::default()
    }
    .generate();

    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 5,
            pairs_per_epoch: 96,
            ..Default::default()
        },
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        24,
        AdamConfig::default(),
        &mut rng,
    );
    let mut objective = LkpObjective::new(LkpKind::NegativeAware, kernel);
    let trainer = Trainer::new(TrainConfig {
        epochs: 5,
        eval_every: 0,
        patience: 0,
        threads: 2,
        ..Default::default()
    });
    trainer.fit(&mut model, &mut objective, &data);
    let artifact = RankingArtifact::from_trained(&model, &objective);

    // The request stream: 20 hot users produce ~2/3 of the traffic, the
    // long tail the rest; per-user candidate pools are stable.
    let pool_for = |user: usize| -> Vec<usize> {
        (0..50)
            .map(|j| (user * 53 + j * 29 + 11) % data.n_items())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect()
    };
    let stream: Vec<RankRequest> = (0..300)
        .map(|i| {
            let user = if i % 3 < 2 {
                (i * 7) % 20
            } else {
                20 + (i * 11) % (data.n_users() - 20)
            };
            RankRequest::new(user, pool_for(user), 5)
        })
        .collect();

    // Reference lists from one direct batch (per-worker cache, width 2).
    let mut direct = Ranker::new(
        artifact.clone(),
        ServeConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let want = direct.rank_batch(&stream);

    // The frontend: sharded cache, micro-batches of ≤ 32 cut by size or a
    // 2 ms deadline (driven deterministically here via a manual clock).
    let clock = ManualClock::new();
    let mut frontend = ServeFrontend::with_clock(
        Ranker::new(
            artifact,
            ServeConfig {
                threads: 2,
                cache_mode: CacheMode::Sharded { shards: 4 },
                ..Default::default()
            },
        ),
        FrontendConfig {
            max_batch: 32,
            max_wait: Duration::from_millis(2),
            ..Default::default()
        },
        Box::new(clock.clone()),
    );

    // Plan-aware pre-warming: the hot users' pairs are known ahead of
    // traffic (the serving analogue of the trainer's frozen epoch plans).
    let plan: Vec<(usize, Vec<usize>)> = (0..20).map(|u| (u, pool_for(u))).collect();
    let warmed = frontend.prewarm(&plan);
    println!("prewarmed {warmed} hot (user, candidate-set) pairs");

    // Submit one request at a time; every ~50 submissions the stream goes
    // quiet and the deadline pump picks up the partial batch.
    let mut tickets: Vec<Ticket> = Vec::new();
    for (i, req) in stream.iter().enumerate() {
        tickets.push(frontend.submit(req.clone()));
        if i % 50 == 49 {
            clock.advance(Duration::from_millis(3));
            frontend.pump();
        }
    }
    frontend.flush();

    // 1. Frontend == direct batch, bitwise.
    let mut hot_first_requests = 0u64;
    for (ticket, want) in tickets.iter().zip(&want) {
        let got = frontend.try_take(*ticket).expect("all tickets served");
        assert_eq!(got.items, want.items, "micro-batching changed a list");
        assert_eq!(got.log_det.to_bits(), want.log_det.to_bits());
        if want.user < 20 {
            hot_first_requests += 1;
        }
    }
    println!("frontend lists identical to direct batching ✓ ({hot_first_requests} hot requests)");

    // 2. Zero assemblies for prewarmed pairs: misses count only the cold
    //    tail users, never the hot set.
    let stats = frontend.ranker().cache_stats_detailed();
    let distinct_tail = stream
        .iter()
        .filter(|r| r.user >= 20)
        .map(|r| r.user)
        .collect::<std::collections::BTreeSet<_>>()
        .len() as u64;
    assert_eq!(
        stats.aggregate.misses, distinct_tail,
        "every miss must be a cold tail user — hot users were prewarmed"
    );
    println!(
        "kernel cache: {} hits / {} misses / {} prewarmed across {} shards \
         (all misses are cold tail users ✓)",
        stats.aggregate.hits,
        stats.aggregate.misses,
        stats.aggregate.prewarmed,
        stats.per_shard.len(),
    );

    let fstats = frontend.stats();
    println!(
        "frontend: {} requests in {} micro-batches ({} size cuts, {} deadline cuts, {} flush cuts)",
        fstats.served, fstats.batches, fstats.cuts_full, fstats.cuts_deadline, fstats.cuts_flush
    );
    assert_eq!(fstats.served, stream.len() as u64);
    assert!(
        fstats.cuts_deadline > 0,
        "quiet periods must cut by deadline"
    );

    for resp in want.iter().take(3) {
        let cats: std::collections::BTreeSet<usize> =
            resp.items.iter().map(|&i| data.category(i)).collect();
        println!(
            "user {:>3}: top-5 {:?}  ({} distinct categories, log_det {:.3})",
            resp.user,
            resp.items,
            cats.len(),
            resp.log_det
        );
    }
}
