//! Top-N evaluation harness.
//!
//! Implements exactly the metric suite of the paper's Section IV-A2:
//!
//! * **Recall@N** and **NDCG@N** — accuracy against the held-out test items.
//! * **CC@N** (Category Coverage) — "the popular and intuitive
//!   diversity-related metric": fraction of all catalog categories covered
//!   by the top-N list.
//! * **F@N** — harmonic mean between quality and diversity (NDCG vs CC),
//!   following the trade-off F-score of the cited works.
//! * **ILD@N** — intra-list distance over item categories, provided for the
//!   E-variant analysis even though the paper omits it from its main tables.
//!
//! Evaluation ranks the full catalog per user, excluding items seen in the
//! train/validation splits, and averages metrics over users with non-empty
//! test sets. Users are processed in parallel on the shared
//! [`lkp_runtime::WorkerPool`]: [`evaluate_with_pool`] runs on a pool the
//! caller already owns (the trainer reuses its training pool for validation
//! passes), while [`evaluate_parallel_on`] keeps the historical standalone
//! signature by spinning up a transient pool.

pub mod metrics;
pub mod topn;

pub use metrics::{MetricSet, Metrics};

use lkp_data::{Dataset, Split};
use lkp_models::Recommender;
use lkp_runtime::WorkerPool;

/// Per-worker evaluation scratch, persisted in the pool's [`lkp_runtime::WorkerState`]
/// so repeated evaluation passes (one per validation epoch) reuse the same
/// score buffer.
#[derive(Default)]
struct EvalScratch {
    scores: Vec<f64>,
}

/// Whether an item must be excluded from the ranked list when evaluating
/// against the given target split: test-time evaluation hides train and
/// validation items; validation-time evaluation hides train items only.
fn excluded(data: &Dataset, user: usize, item: usize, target: Split) -> bool {
    match target {
        Split::Test => data.is_seen_before_test(user, item),
        Split::Validation => data.user_items(user, Split::Train).contains(&item),
        Split::Train => false,
    }
}

/// Evaluates a model against the given split at the given cutoffs.
///
/// Returns one [`Metrics`] per cutoff, in the same order. This is the
/// single-threaded reference path; [`evaluate_parallel`] is the fast one.
pub fn evaluate_on<M: Recommender>(
    model: &M,
    data: &Dataset,
    cutoffs: &[usize],
    target: Split,
) -> MetricSet {
    let mut agg = vec![Metrics::zero(); cutoffs.len()];
    let mut n_users_counted = 0usize;
    let mut scores = Vec::new();
    for user in 0..data.n_users() {
        let truth = data.user_items(user, target);
        if truth.is_empty() {
            continue;
        }
        n_users_counted += 1;
        model.score_all(user, &mut scores);
        let max_n = cutoffs.iter().copied().max().unwrap_or(0);
        let top = topn::top_n_excluding(&scores, max_n, |item| excluded(data, user, item, target));
        for (slot, &n) in agg.iter_mut().zip(cutoffs) {
            let prefix = &top[..n.min(top.len())];
            slot.accumulate(&metrics::user_metrics(prefix, truth, data, n));
        }
    }
    MetricSet::from_accumulated(agg, cutoffs.to_vec(), n_users_counted)
}

/// Evaluates a model on the dataset's **test** split at the given cutoffs.
pub fn evaluate<M: Recommender>(model: &M, data: &Dataset, cutoffs: &[usize]) -> MetricSet {
    evaluate_on(model, data, cutoffs, Split::Test)
}

/// Parallel evaluation across users.
///
/// The model is only read, so scoped threads share it immutably; per-user
/// metric rows are merged at the end.
pub fn evaluate_parallel<M: Recommender + Sync>(
    model: &M,
    data: &Dataset,
    cutoffs: &[usize],
    n_threads: usize,
) -> MetricSet {
    evaluate_parallel_on(model, data, cutoffs, Split::Test, n_threads)
}

/// Parallel evaluation against an arbitrary split, creating a transient pool.
///
/// Kept for callers without a pool of their own; anything evaluating
/// repeatedly (the trainer's validation loop, benchmarks) should hold a
/// [`WorkerPool`] and call [`evaluate_with_pool`] so worker threads and
/// score buffers persist across passes.
pub fn evaluate_parallel_on<M: Recommender + Sync>(
    model: &M,
    data: &Dataset,
    cutoffs: &[usize],
    target: Split,
    n_threads: usize,
) -> MetricSet {
    let mut pool = WorkerPool::new(n_threads.max(1));
    evaluate_with_pool(model, data, cutoffs, target, &mut pool)
}

/// Parallel evaluation on a caller-owned persistent pool.
///
/// Users are partitioned into contiguous chunks, one pool worker per chunk;
/// the model is only read, so workers share it immutably. Per-chunk metric
/// rows are merged in chunk order, which makes the result identical to the
/// sequential path (metric accumulation is a sum, but keeping a
/// deterministic merge order means even round-off is reproducible run to
/// run). Each worker's score buffer lives in its pool state and is reused
/// across evaluation passes.
pub fn evaluate_with_pool<M: Recommender + Sync>(
    model: &M,
    data: &Dataset,
    cutoffs: &[usize],
    target: Split,
    pool: &mut WorkerPool,
) -> MetricSet {
    let users: Vec<usize> = (0..data.n_users())
        .filter(|&u| !data.user_items(u, target).is_empty())
        .collect();

    let locals: Vec<Vec<Metrics>> = pool.map_chunks(&users, |_, slice, state| {
        let scratch = state.get_or_default::<EvalScratch>();
        let mut local = vec![Metrics::zero(); cutoffs.len()];
        let max_n = cutoffs.iter().copied().max().unwrap_or(0);
        for &user in slice {
            let truth = data.user_items(user, target);
            model.score_all(user, &mut scratch.scores);
            let top = topn::top_n_excluding(&scratch.scores, max_n, |item| {
                excluded(data, user, item, target)
            });
            for (slot, &n) in local.iter_mut().zip(cutoffs) {
                let prefix = &top[..n.min(top.len())];
                slot.accumulate(&metrics::user_metrics(prefix, truth, data, n));
            }
        }
        local
    });

    let mut agg = vec![Metrics::zero(); cutoffs.len()];
    for local in locals {
        for (a, l) in agg.iter_mut().zip(&local) {
            a.accumulate(l);
        }
    }
    MetricSet::from_accumulated(agg, cutoffs.to_vec(), users.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkp_data::SyntheticConfig;
    use lkp_models::MatrixFactorization;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Oracle {
        data: Dataset,
    }

    /// Scores test items of each user at +1, everything else 0 — a perfect
    /// ranker (up to excluded items).
    impl Recommender for Oracle {
        fn n_users(&self) -> usize {
            self.data.n_users()
        }
        fn n_items(&self) -> usize {
            self.data.n_items()
        }
        fn score_items(&self, user: usize, items: &[usize]) -> Vec<f64> {
            items
                .iter()
                .map(|&i| {
                    if self.data.user_items(user, Split::Test).contains(&i) {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect()
        }
        fn accumulate_score_grads(&mut self, _: usize, _: &[usize], _: &[f64]) {}
        fn step(&mut self) {}
    }

    fn data() -> Dataset {
        lkp_data::synthetic::generate(&SyntheticConfig {
            n_users: 40,
            n_items: 100,
            n_categories: 10,
            mean_interactions: 20.0,
            ..Default::default()
        })
    }

    #[test]
    fn oracle_achieves_perfect_ndcg() {
        let data = data();
        let oracle = Oracle { data: data.clone() };
        let m = evaluate(&oracle, &data, &[5]);
        let at5 = m.at(5).unwrap();
        assert!(at5.ndcg > 0.99, "oracle NDCG@5 = {}", at5.ndcg);
        assert!(at5.recall > 0.5, "oracle Recall@5 = {}", at5.recall);
    }

    #[test]
    fn random_model_scores_poorly_but_validly() {
        let data = data();
        let mut rng = StdRng::seed_from_u64(0);
        let mf = MatrixFactorization::new(
            data.n_users(),
            data.n_items(),
            4,
            lkp_nn::AdamConfig::default(),
            &mut rng,
        );
        let m = evaluate(&mf, &data, &[5, 10]);
        for n in [5, 10] {
            let at = m.at(n).unwrap();
            assert!(at.recall >= 0.0 && at.recall <= 1.0);
            assert!(at.ndcg >= 0.0 && at.ndcg <= 1.0);
            assert!(at.category_coverage >= 0.0 && at.category_coverage <= 1.0);
        }
        // Untrained model should be far from the oracle.
        assert!(m.at(5).unwrap().ndcg < 0.5);
    }

    #[test]
    fn pooled_evaluation_is_stable_across_repeated_passes() {
        // The same persistent pool driven through several passes (the
        // trainer's validation pattern) must keep producing the identical
        // MetricSet — worker-state reuse leaks nothing across passes.
        let data = data();
        let oracle = Oracle { data: data.clone() };
        let mut pool = lkp_runtime::WorkerPool::new(3);
        let first = evaluate_with_pool(&oracle, &data, &[5, 10], Split::Test, &mut pool);
        for _ in 0..3 {
            let again = evaluate_with_pool(&oracle, &data, &[5, 10], Split::Test, &mut pool);
            for n in [5, 10] {
                let a = first.at(n).unwrap();
                let b = again.at(n).unwrap();
                assert_eq!(a.ndcg.to_bits(), b.ndcg.to_bits());
                assert_eq!(a.recall.to_bits(), b.recall.to_bits());
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let data = data();
        let oracle = Oracle { data: data.clone() };
        let seq = evaluate(&oracle, &data, &[5, 20]);
        let par = evaluate_parallel(&oracle, &data, &[5, 20], 4);
        for n in [5, 20] {
            let a = seq.at(n).unwrap();
            let b = par.at(n).unwrap();
            assert!((a.recall - b.recall).abs() < 1e-12);
            assert!((a.ndcg - b.ndcg).abs() < 1e-12);
            assert!((a.category_coverage - b.category_coverage).abs() < 1e-12);
            assert!((a.f_score - b.f_score).abs() < 1e-12);
        }
    }
}
