//! Which rules apply where. Paths are workspace-relative with `/`
//! separators; a list entry matches a file when it is a prefix of (or equal
//! to) the file's path, so `crates/serve/src/cache` covers both `cache.rs`
//! and everything under `cache/`.

/// The rule configuration: module lists, token lists, and walk roots.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Modules whose non-test code must stay allocation-free (L1).
    pub hot_path_modules: Vec<String>,
    /// Files L2 (lock-scope) applies to. Defaults to every `src/` tree —
    /// test code synchronizes with mutexes freely.
    pub lock_scope_modules: Vec<String>,
    /// The bitwise-pinned deterministic core (L3): no clock reads, no
    /// hash-order iteration.
    pub deterministic_modules: Vec<String>,
    /// Allocating calls denied on hot paths (L1 token list).
    pub alloc_tokens: Vec<String>,
    /// Expensive-work call prefixes denied under a live lock guard (L2): an
    /// identifier starting with one of these, called inside a guard scope,
    /// is a finding (`assemble` also catches `assemble_kernel`, …).
    pub expensive_call_prefixes: Vec<String>,
    /// Directories walked by [`crate::lint_tree`].
    pub source_roots: Vec<String>,
    /// Directory names skipped during the walk (anywhere in the tree).
    pub excluded_dirs: Vec<String>,
}

fn strings(items: &[&str]) -> Vec<String> {
    items.iter().map(|s| s.to_string()).collect()
}

impl LintConfig {
    /// The workspace's production configuration — the module lists CI
    /// enforces. Kept in one place so `docs/LINTS.md` has a single source of
    /// truth to mirror.
    pub fn repo_default() -> Self {
        LintConfig {
            hot_path_modules: strings(&[
                "crates/dpp/src/workspace.rs",
                "crates/dpp/src/map.rs",
                "crates/dpp/src/map_dual.rs",
                "crates/dpp/src/esp.rs",
                "crates/dpp/src/batch.rs",
                "crates/dpp/src/map_merge.rs",
                "crates/serve/src/ranker.rs",
                "crates/serve/src/cache",
                "crates/serve/src/shard.rs",
                "crates/runtime/src/plan.rs",
                "crates/linalg/src/eigen.rs",
                "crates/core/src/trainer/update.rs",
                "crates/data/src/delta.rs",
            ]),
            lock_scope_modules: strings(&["crates/", "src/"]),
            deterministic_modules: strings(&[
                "crates/dpp/src/",
                "crates/linalg/src/",
                "crates/eval/src/",
                "crates/serve/src/frontend/core.rs",
                "crates/core/src/trainer/update.rs",
                "crates/data/src/delta.rs",
            ]),
            alloc_tokens: strings(&[
                "Vec::new",
                "vec!",
                "to_vec",
                "collect",
                "Box::new",
                "format!",
                "String::from",
            ]),
            expensive_call_prefixes: strings(&[
                "assemble", "compute", "eigen", "gram", "matmul", "prewarm",
            ]),
            source_roots: strings(&["crates", "src", "examples"]),
            excluded_dirs: strings(&["target", "fixtures", "vendor"]),
        }
    }

    fn matches(list: &[String], rel_path: &str) -> bool {
        list.iter().any(|m| rel_path.starts_with(m.as_str()))
    }

    /// Whether `rel_path` is in the allocation-free hot-path set (L1).
    pub fn is_hot_path(&self, rel_path: &str) -> bool {
        Self::matches(&self.hot_path_modules, rel_path)
    }

    /// Whether L2 applies to `rel_path`. Only `src/` trees are checked:
    /// integration tests and benches may hold locks around anything.
    pub fn is_lock_scope(&self, rel_path: &str) -> bool {
        Self::matches(&self.lock_scope_modules, rel_path) && rel_path.contains("src/")
    }

    /// Whether `rel_path` is in the bitwise-pinned deterministic core (L3).
    pub fn is_deterministic_core(&self, rel_path: &str) -> bool {
        Self::matches(&self.deterministic_modules, rel_path)
    }
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig::repo_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repo_default_scopes() {
        let c = LintConfig::repo_default();
        assert!(c.is_hot_path("crates/dpp/src/workspace.rs"));
        assert!(c.is_hot_path("crates/dpp/src/map_merge.rs"));
        assert!(c.is_hot_path("crates/serve/src/cache/shared.rs"));
        assert!(c.is_hot_path("crates/serve/src/cache.rs"));
        assert!(c.is_hot_path("crates/serve/src/shard.rs"));
        assert!(c.is_hot_path("crates/runtime/src/plan.rs"));
        assert!(!c.is_hot_path("crates/serve/src/frontend/core.rs"));
        assert!(c.is_deterministic_core("crates/linalg/src/eigen.rs"));
        assert!(c.is_deterministic_core("crates/dpp/src/map_merge.rs"));
        assert!(c.is_lock_scope("crates/serve/src/shard.rs"));
        assert!(c.is_deterministic_core("crates/serve/src/frontend/core.rs"));
        assert!(!c.is_deterministic_core("crates/serve/src/frontend/driver.rs"));
        assert!(c.is_lock_scope("crates/serve/src/ranker.rs"));
        assert!(!c.is_lock_scope("crates/serve/tests/robustness.rs"));
        // The refresh pipeline's hot halves: delta planning and the
        // warm-start update engine are both allocation-free and
        // bitwise-pinned.
        assert!(c.is_hot_path("crates/core/src/trainer/update.rs"));
        assert!(c.is_deterministic_core("crates/core/src/trainer/update.rs"));
        assert!(c.is_hot_path("crates/data/src/delta.rs"));
        assert!(c.is_deterministic_core("crates/data/src/delta.rs"));
        assert!(!c.is_hot_path("crates/core/src/trainer/fit.rs"));
        assert!(!c.is_deterministic_core("crates/core/src/trainer/mod.rs"));
    }
}
