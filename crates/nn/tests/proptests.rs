//! Property-based tests for the neural substrate: gradient correctness under
//! random shapes/inputs and optimizer invariants.

use lkp_linalg::Matrix;
use lkp_nn::{Activation, AdamConfig, AdamState, Dense, EmbeddingTable, Mlp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dense_input_gradient_matches_fd(seed in 0u64..1000, x in proptest::collection::vec(-2.0..2.0_f64, 4)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = Dense::new(3, 4, AdamConfig { weight_decay: 0.0, ..Default::default() }, &mut rng);
        let dy = [1.0, -0.5, 2.0];
        let dx = layer.backward(&x, &dy);
        let h = 1e-6;
        for i in 0..4 {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let f = |v: &[f64]| -> f64 {
                layer.forward(v).iter().zip(&dy).map(|(y, d)| y * d).sum()
            };
            let fd = (f(&xp) - f(&xm)) / (2.0 * h);
            prop_assert!((dx[i] - fd).abs() < 1e-5, "dim {i}: {} vs {fd}", dx[i]);
        }
    }

    #[test]
    fn activations_are_monotone_nondecreasing(a in -5.0..5.0_f64, b in -5.0..5.0_f64) {
        // All supported activations are monotone.
        for act in [Activation::ReLU, Activation::Sigmoid, Activation::Tanh, Activation::Identity] {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let mut x = [lo, hi];
            act.forward(&mut x);
            prop_assert!(x[0] <= x[1] + 1e-12, "{act:?} broke monotonicity");
        }
    }

    #[test]
    fn mlp_gradient_matches_fd(seed in 0u64..500, x in proptest::collection::vec(-1.5..1.5_f64, 3)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&[3, 4, 1], Activation::Tanh, Activation::Identity,
            AdamConfig { weight_decay: 0.0, ..Default::default() }, &mut rng);
        let cache = mlp.forward(&x);
        let dx = mlp.backward(&cache, &[1.0]);
        let h = 1e-6;
        for i in 0..3 {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let fd = (mlp.forward(&xp).output()[0] - mlp.forward(&xm).output()[0]) / (2.0 * h);
            prop_assert!((dx[i] - fd).abs() < 1e-5, "dim {i}: {} vs {fd}", dx[i]);
        }
    }

    #[test]
    fn adam_step_is_bounded_by_lr(g in -1e6..1e6_f64, lr in 0.001..0.1_f64) {
        // Adam's first update magnitude is at most ~lr regardless of the
        // gradient scale (bias-corrected m/√v ≈ sign(g)).
        let mut state = AdamState::new(1, 1, AdamConfig { lr, weight_decay: 0.0, grad_clip: 0.0, ..Default::default() });
        let mut p = Matrix::zeros(1, 1);
        state.step_row(&mut p, 0, &[g]);
        prop_assert!(p[(0, 0)].abs() <= lr * 1.0001 + 1e-12, "step {} exceeds lr {lr}", p[(0, 0)]);
    }

    #[test]
    fn embedding_grads_accumulate_linearly(seed in 0u64..200, g1 in -1.0..1.0_f64, g2 in -1.0..1.0_f64) {
        // accumulate(g1); accumulate(g2); step == accumulate(g1+g2); step.
        let mk = || {
            let mut rng = StdRng::seed_from_u64(seed);
            EmbeddingTable::new(2, 1, 0.1, AdamConfig { weight_decay: 0.0, ..Default::default() }, &mut rng)
        };
        let mut split = mk();
        split.accumulate_grad(0, &[g1]);
        split.accumulate_grad(0, &[g2]);
        split.step();
        let mut joint = mk();
        joint.accumulate_grad(0, &[g1 + g2]);
        joint.step();
        prop_assert!((split.row(0)[0] - joint.row(0)[0]).abs() < 1e-12);
    }

    #[test]
    fn zero_gradient_moves_nothing_without_decay(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = EmbeddingTable::new(3, 2, 0.1,
            AdamConfig { weight_decay: 0.0, ..Default::default() }, &mut rng);
        let before = t.matrix().clone();
        t.accumulate_grad(1, &[0.0, 0.0]);
        t.step();
        prop_assert!(t.matrix().max_abs_diff(&before) < 1e-15);
    }
}
