//! L3 fixture: seeded determinism violations. `tests/engine.rs` asserts the
//! exact `line` of every finding — renumbering this file breaks that test.

use std::collections::HashMap;
use std::time::{Instant, SystemTime}; // line 5: SystemTime (import counts)

pub struct Registry {
    entries: HashMap<u64, f64>,
}

impl Registry {
    pub fn elapsed(&self) -> f64 {
        let start = Instant::now(); // line 13: clock read
        start.elapsed().as_secs_f64()
    }

    pub fn stamp(&self) -> SystemTime {
        SystemTime::now() // lines 17+18: SystemTime mentions
    }

    pub fn total(&self) -> f64 {
        let mut sum = 0.0;
        for (_, v) in &self.entries {
            // line 23: for … in over a HashMap
            sum += v;
        }
        sum
    }

    pub fn keys_in_hash_order(&self) -> usize {
        self.entries.keys().count() // line 31: .keys()
    }

    pub fn chained_over_lines(&self) -> usize {
        self.entries
            .iter() // line 36: .iter() with receiver on the line above
            .count()
    }

    /// OK: sorted iteration — the names differ, and `Vec` iteration is fine.
    pub fn total_sorted(&self, sorted_keys: &[u64]) -> f64 {
        let mut sum = 0.0;
        for k in sorted_keys {
            sum += self.entries.get(k).copied().unwrap_or(0.0);
        }
        sum
    }
}
