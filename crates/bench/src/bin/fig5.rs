//! Figure 5 — case study: one user's Top-5 recommendations under BPR,
//! S2SRank and LkP-PS, plus k-DPP probabilities of 3-subsets of the user's
//! test items.
//!
//! The paper's observations: all three methods place some target items in
//! the Top-5, but LkP also surfaces a target from an under-represented
//! category; and among 3-subsets of the test items, the category-diverse
//! subset carries the highest k-DPP probability while subsets with stronger
//! internal dependencies beat equal-coverage alternatives.

use lkp_bench::{ExpArgs, Method};
use lkp_core::LkpVariant;
use lkp_data::{Split, SyntheticPreset};
use lkp_dpp::{enumerate_subsets, KDpp};
use lkp_models::Recommender;

fn main() {
    let args = ExpArgs::parse();
    let data = args.dataset(SyntheticPreset::MovieLens);
    let kernel = args.diversity_kernel(&data);

    // Pick a case-study user: at least 4 train categories and >= 5 test items.
    let user = (0..data.n_users())
        .find(|&u| {
            data.category_coverage(data.user_items(u, Split::Train)) >= 4
                && data.user_items(u, Split::Test).len() >= 5
        })
        .expect("case-study user exists at this scale");
    println!("== Fig. 5 case study: user u{user} (ML preset) ==");
    let train = data.user_items(user, Split::Train);
    let mut genre_counts = vec![0usize; data.n_categories()];
    for &i in train {
        genre_counts[data.category(i)] += 1;
    }
    let genres: Vec<String> = genre_counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(g, &c)| format!("g{g}×{c}"))
        .collect();
    println!("training genre profile: {}", genres.join("  "));
    let test = data.user_items(user, Split::Test).to_vec();
    println!(
        "test items: {}",
        test.iter()
            .map(|&i| format!("v{i}(g{})", data.category(i)))
            .collect::<Vec<_>>()
            .join("  ")
    );

    // Train the three methods and print their Top-5 for this user.
    for method in [Method::Bpr, Method::S2SRank, Method::Lkp(LkpVariant::Ps)] {
        let mut model = args.gcn(&data);
        lkp_bench::run_method(&args, &data, &kernel, &mut model, method);
        let mut scores = Vec::new();
        model.score_all(user, &mut scores);
        let top = lkp_eval::topn::top_n_excluding(&scores, 5, |item| {
            data.is_seen_before_test(user, item)
        });
        let rendered: Vec<String> = top
            .iter()
            .map(|&i| {
                let hit = if test.contains(&i) { "1" } else { "0" };
                format!("v{i}(g{},{hit})", data.category(i))
            })
            .collect();
        let hits = top.iter().filter(|i| test.contains(i)).count();
        println!(
            "{:<10} top-5: {}  (hits: {hits})",
            method.name(),
            rendered.join("  ")
        );

        // For the LkP model, also report the 3-subset k-DPP probabilities
        // over the first five test items (the paper's P_{L_u}^k analysis).
        if matches!(method, Method::Lkp(_)) {
            let pool: Vec<usize> = test.iter().copied().take(5).collect();
            let s = model.score_items(user, &pool);
            let k_sub = kernel
                .normalized()
                .submatrix(&pool)
                .expect("items in range");
            let l = lkp_core::objective::tailored_kernel(&s, &k_sub).expect("PSD kernel");
            let kdpp = KDpp::new(l, 3).expect("valid 3-DPP");
            println!("3-subset k-DPP probabilities over the first 5 test items:");
            let mut rows: Vec<(Vec<usize>, f64, usize)> = enumerate_subsets(5, 3)
                .into_iter()
                .map(|subset| {
                    let p = kdpp.prob(&subset).expect("size matches");
                    let items: Vec<usize> = subset.iter().map(|&a| pool[a]).collect();
                    let coverage = data.category_coverage(&items);
                    (items, p, coverage)
                })
                .collect();
            rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite probabilities"));
            for (items, p, coverage) in rows.iter().take(5) {
                let labels: Vec<String> = items
                    .iter()
                    .map(|&i| format!("v{i}(g{})", data.category(i)))
                    .collect();
                println!("  P = {p:.4}  cats = {coverage}  {{{}}}", labels.join(", "));
            }
            let top_coverage = rows.first().map(|r| r.2).unwrap_or(0);
            let max_coverage = rows.iter().map(|r| r.2).max().unwrap_or(0);
            println!(
                "  shape check: highest-probability subset spans {top_coverage}/{max_coverage} of the max coverage"
            );
        }
    }
}
