//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so this vendored crate re-implements exactly the slice of the
//! rand 0.9 API the workspace consumes:
//!
//! * [`Rng`] with `random::<T>()`, `random_range(..)` and `random_bool(..)`;
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`;
//! * [`rngs::StdRng`] (here: xoshiro256++ seeded through SplitMix64);
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The generator is deterministic for a given seed, has 256 bits of state,
//! and passes the statistical checks in this workspace's test suite
//! (empirical k-DPP sampling frequencies vs exact probabilities). It is NOT
//! the upstream `StdRng` stream — seeds produce different sequences than the
//! real crate — which is fine here because every consumer treats the stream
//! as an opaque reproducible source.

pub mod rngs;
pub mod seq;

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-length byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64
    /// (the standard recommendation for seeding xoshiro-family generators).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used to expand small seeds into full generator state.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly from an `Rng` (the `StandardUniform`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free unbiased integer sampling in `[0, n)` (Lemire's method
/// with the widening-multiply trick, falling back to rejection only on the
/// biased boundary).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_range_impl!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod generators {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's standard generator.
    ///
    /// 256 bits of state, period `2^256 − 1`, excellent statistical quality
    /// for simulation workloads (Blackman & Vigna 2019).
    #[derive(Debug, Clone)]
    pub struct Xoshiro256PlusPlus {
        s: [u64; 4],
    }

    impl RngCore for Xoshiro256PlusPlus {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for Xoshiro256PlusPlus {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is the one invalid xoshiro state.
            if s.iter().all(|&x| x == 0) {
                s = [
                    0x9E3779B97F4A7C15,
                    0x6A09E667F3BCC909,
                    0xBB67AE8584CAA73B,
                    0x3C6EF372FE94F82B,
                ];
            }
            Xoshiro256PlusPlus { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_public(), b.next_u64_public());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64_public()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64_public()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..1000 {
            let x = rng.random_range(0usize..10);
            assert!(x < 10);
            let y = rng.random_range(0usize..=4);
            assert!(y <= 4);
            seen_low |= y == 0;
            seen_high |= y == 4;
            let f = rng.random_range(-1.0..1.0_f64);
            assert!((-1.0..1.0).contains(&f));
        }
        assert!(seen_low && seen_high, "inclusive range endpoints reachable");
    }

    #[test]
    fn integer_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 5];
        let n = 50_000;
        for _ in 0..n {
            counts[rng.random_range(0usize..5)] += 1;
        }
        for &c in &counts {
            let expect = n as f64 / 5.0;
            assert!(
                (c as f64 - expect).abs() < 5.0 * expect.sqrt(),
                "counts {counts:?}"
            );
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    impl StdRng {
        fn next_u64_public(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }
}
