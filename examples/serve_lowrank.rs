//! The low-rank dual serving fast path at production candidate-pool sizes:
//! greedy MAP runs directly on the factored kernel `B = Diag(q)·Φ_C`
//! without ever materializing the dense `|C| × |C|` kernel.
//!
//! ```text
//! cargo run --release --example serve_lowrank
//! ```
//!
//! Three things are demonstrated and asserted:
//!
//! 1. **equality** — at `|C| = 1600` the dual path serves the same top-10
//!    list as the dense path for every request;
//! 2. **speed** — cold (cache disabled), the dual path is at least 2×
//!    faster per request (the bench probe's bar is 3×; the example keeps a
//!    CI-safe margin);
//! 3. **hybrid routing under the driver** — with
//!    `min_candidates` between the degraded rerank head and the full pool,
//!    full requests ride the dual path while head-capped requests stay
//!    dense, and every response served through the [`FrontendDriver`] is
//!    bitwise identical to a direct batch in the same configuration.

use lkp::prelude::*;
use lkp::serve::CacheMode;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn main() {
    // Enough catalog for 1600-item candidate pools; compact users so the
    // example trains in seconds.
    let data = SyntheticConfig {
        n_users: 100,
        n_items: 2000,
        n_categories: 12,
        mean_interactions: 16.0,
        seed: 21,
        ..Default::default()
    }
    .generate();

    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 64,
            dim: 16,
            ..Default::default()
        },
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        24,
        AdamConfig::default(),
        &mut rng,
    );
    let mut objective = LkpObjective::new(LkpKind::NegativeAware, kernel);
    let trainer = Trainer::new(TrainConfig {
        epochs: 2,
        eval_every: 0,
        patience: 0,
        threads: 2,
        ..Default::default()
    });
    trainer.fit(&mut model, &mut objective, &data);
    let artifact = RankingArtifact::from_trained(&model, &objective);

    // 1600 unique candidates per user (101 is coprime with the catalog
    // size, so the stride never collides).
    let pool_for = |user: usize| -> Vec<usize> {
        (0..1600)
            .map(|j| (user * 37 + j * 101 + 13) % data.n_items())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect()
    };
    let reqs: Vec<RankRequest> = (0..12)
        .map(|i| {
            let u = (i * 17 + 5) % data.n_users();
            RankRequest::new(u, pool_for(u), 10)
        })
        .collect();

    // ---- 1 + 2: equality and speed, dense vs dual, cold cache ----
    let cold = |form| ServeConfig {
        threads: 2,
        kernel_cache_bytes: 0,
        kernel_form: form,
        ..Default::default()
    };
    let mut dense = Ranker::new(artifact.clone(), cold(KernelForm::Dense));
    let mut dual = Ranker::new(
        artifact.clone(),
        cold(KernelForm::LowRankDual { min_candidates: 0 }),
    );
    let mut dense_out = Vec::new();
    let mut dual_out = Vec::new();
    dense.rank_batch_into(&reqs, &mut dense_out); // warm buffers, not caches
    dual.rank_batch_into(&reqs, &mut dual_out);
    let t = Instant::now();
    dense.rank_batch_into(&reqs, &mut dense_out);
    let dense_ns = t.elapsed().as_nanos() as f64 / reqs.len() as f64;
    let t = Instant::now();
    dual.rank_batch_into(&reqs, &mut dual_out);
    let dual_ns = t.elapsed().as_nanos() as f64 / reqs.len() as f64;
    for (a, b) in dense_out.iter().zip(&dual_out) {
        assert_eq!(a.items, b.items, "dual path changed a served list");
        assert!(
            (a.log_det - b.log_det).abs() < 1e-6 * a.log_det.abs().max(1.0),
            "log_det drifted past reassociation rounding"
        );
    }
    let speedup = dense_ns / dual_ns;
    println!(
        "|C| = 1600, top-10, cold: dense {:.2} ms/request, dual {:.3} ms/request ({speedup:.1}x)",
        dense_ns / 1e6,
        dual_ns / 1e6
    );
    assert!(
        speedup >= 2.0,
        "dual speedup {speedup:.2}x fell under the example's 2x bar"
    );
    assert_eq!(dual.dual_fallbacks(), 0, "no breakdowns on this workload");

    // ---- 3: hybrid routing under the production driver ----
    // min_candidates = 256 splits the traffic: full 1600-candidate requests
    // go dual; head-capped (rerank_head = 64) requests rerank a 64-item
    // head and stay dense. Both shapes flow through one driver and must be
    // bitwise identical to a direct batch in the same configuration.
    let hybrid = ServeConfig {
        threads: 2,
        cache_mode: CacheMode::Sharded { shards: 4 },
        kernel_form: KernelForm::LowRankDual {
            min_candidates: 256,
        },
        ..Default::default()
    };
    let mixed: Vec<RankRequest> = reqs
        .iter()
        .enumerate()
        .map(|(i, r)| {
            if i % 2 == 1 {
                r.clone().with_rerank_head(64)
            } else {
                r.clone()
            }
        })
        .collect();
    let want = Ranker::new(artifact.clone(), hybrid.clone()).rank_batch(&mixed);

    let frontend = ServeFrontend::new(
        Ranker::new(artifact, hybrid),
        FrontendConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            queue_capacity: 64,
            ..Default::default()
        },
    );
    let driver = FrontendDriver::spawn(frontend);
    let client = driver.client();
    let tickets: Vec<_> = mixed
        .iter()
        .map(|r| client.submit(r.clone()).expect("queue has room"))
        .collect();
    let mut degraded = 0usize;
    for (ticket, want) in tickets.into_iter().zip(&want) {
        let resp = client
            .take_deadline(ticket, Duration::from_secs(30))
            .expect("every ticket completes");
        assert!(matches!(resp.outcome, RankOutcome::Served));
        assert_eq!(resp.items, want.items, "driver drifted from direct batch");
        assert_eq!(resp.log_det.to_bits(), want.log_det.to_bits());
        degraded += resp.degraded as usize;
    }
    assert_eq!(
        degraded,
        mixed.len() / 2,
        "exactly the head-capped half reports degraded"
    );
    drop(client);
    let mut frontend = driver.shutdown().expect("all clients dropped");
    assert_eq!(
        frontend.ranker().dual_fallbacks(),
        0,
        "hybrid run finished without breakdowns"
    );
    println!(
        "hybrid driver run: {} responses bitwise-verified ({} dual full-pool, {} dense head-capped) ✓",
        mixed.len(),
        mixed.len() - degraded,
        degraded
    );

    for resp in want.iter().take(2) {
        let cats: std::collections::BTreeSet<usize> =
            resp.items.iter().map(|&i| data.category(i)).collect();
        println!(
            "user {:>3}: top-10 {:?}  ({} distinct categories{})",
            resp.user,
            resp.items,
            cats.len(),
            if resp.degraded { ", degraded head" } else { "" }
        );
    }
}
