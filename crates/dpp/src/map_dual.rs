//! Greedy MAP inference in the dual (factored) representation.
//!
//! Serving builds the tailored kernel `L_C = B·Bᵀ + ε·I` from a thin factor
//! `B = Diag(q)·Φ_C` (`m × d`). The dense path materializes `L_C`
//! (`O(m²·d)`) before running the incremental-Cholesky greedy of [`crate::map`];
//! this module runs the *same* greedy recursion without ever forming `L_C`:
//! every off-diagonal entry the update needs is an inner product of two
//! factor rows, computed on demand (`L_ij = ⟨b_i, b_j⟩` for `i ≠ j`,
//! `L_ii = ⟨b_i, b_i⟩ + ε`). One greedy step over `m` candidates costs
//! `O(m·(d + |S|))`, so a full top-`N` list is `O(m·N·(d + N))` — linear in
//! the candidate count, versus `O(m²·d)` for dense assembly alone. This is
//! the dual-representation treatment of the serving path (Kulesza & Taskar
//! §3.3; Gartrell et al.'s low-rank DPP serving): the training side has had
//! the analogous `d × d` dual spectral path in [`crate::dual`] since PR 1.
//!
//! The recursion subtracts squared Cholesky coefficients from running
//! residual norms, which can cancel catastrophically on near-singular
//! kernels. The dense path reads fresh kernel entries each step and degrades
//! gracefully; here a corrupted residual would silently poison every later
//! gain, so the update *guards* the drift: a residual more negative than
//! `guard · max_initial_gain` (or non-finite) aborts with
//! [`DppError::NumericalBreakdown`], letting callers fall back to the dense
//! path. Setting a negative guard makes the very first update trip — the
//! fault-injection lever the serving tests use to exercise that fallback.

use crate::{DppError, Result};
use lkp_linalg::Matrix;

/// Default relative tolerance for negative residual drift before the dual
/// recursion reports [`DppError::NumericalBreakdown`].
///
/// Residuals are monotonically non-increasing and mathematically non-negative;
/// round-off can push an exhausted candidate slightly below zero. A drift of
/// `1e-8 ×` the largest initial gain is far beyond honest round-off for
/// well-conditioned kernels but far below the gains a usable selection needs.
pub const DUAL_BREAKDOWN_GUARD: f64 = 1e-8;

/// Reusable scratch for [`greedy_map_dual_with`] — the dual serving hot path.
///
/// One workspace per worker thread; buffers grow to the steady-state
/// `(m, d, k)` shape on first use and are clear-and-refilled afterwards, so a
/// steady-state call performs no heap allocation. The selection, per-step
/// gains, and incremental `log det` of the last call stay readable until the
/// next one.
#[derive(Debug, Clone)]
pub struct DualMapWorkspace {
    /// Residual squared norms (marginal gains) per candidate.
    d2: Vec<f64>,
    /// Incremental Cholesky rows, candidate-major: row `i` holds the first
    /// `selected.len()` coefficients of candidate `i`.
    c: Matrix,
    /// Contiguous copy of the newly selected Cholesky row (borrow-splitting
    /// scratch).
    cj: Vec<f64>,
    /// Contiguous copy of the newly selected factor row `b_j`.
    bj: Vec<f64>,
    in_set: Vec<bool>,
    selected: Vec<usize>,
    /// Marginal gain accepted at each greedy step, in selection order.
    gains: Vec<f64>,
    log_det: f64,
    /// Relative negative-drift tolerance (see [`DUAL_BREAKDOWN_GUARD`]).
    /// Negative values trip the breakdown check on the first update —
    /// deterministic fault injection for fallback tests.
    pub guard: f64,
}

impl Default for DualMapWorkspace {
    fn default() -> Self {
        DualMapWorkspace {
            // lint:allow(hotpath-alloc): workspace construction is the cold
            // one-time site; every `Vec::new` below is a buffer that grows
            // once and is reused allocation-free on the hot path.
            d2: Vec::new(),
            c: Matrix::zeros(0, 0),
            cj: Vec::new(),       // lint:allow(hotpath-alloc): one-time construction
            bj: Vec::new(),       // lint:allow(hotpath-alloc): one-time construction
            in_set: Vec::new(),   // lint:allow(hotpath-alloc): one-time construction
            selected: Vec::new(), // lint:allow(hotpath-alloc): one-time construction
            gains: Vec::new(),    // lint:allow(hotpath-alloc): one-time construction
            log_det: 0.0,
            guard: DUAL_BREAKDOWN_GUARD,
        }
    }
}

impl DualMapWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        DualMapWorkspace::default()
    }

    /// Selected row indices of the last [`greedy_map_dual_with`] call, in
    /// selection order.
    pub fn items(&self) -> &[usize] {
        &self.selected
    }

    /// Marginal gain accepted at each step of the last call, in selection
    /// order (`gains()[t]` is the `d²` of the item picked at step `t`).
    pub fn gains(&self) -> &[f64] {
        &self.gains
    }

    /// `log det(L_S)` of the last selection.
    pub fn log_det(&self) -> f64 {
        self.log_det
    }
}

/// Fast greedy MAP on the implicit kernel `B·Bᵀ + jitter·I`, reusing `ws`.
///
/// `b` is the `m × d` row factor (`b_i = q_i·φ_i` in serving); `jitter` is
/// the diagonal regularizer the dense path adds to `L_C` (it never touches
/// off-diagonals, so it appears only in the initial gains). The greedy
/// recursion — argmax tie-breaking, the `gain ≤ 1e-12` rank-exhaustion stop,
/// and the residual update — mirrors [`crate::map::greedy_map_with`] line
/// for line, with the dense read `L_ji` replaced by `⟨b_j, b_i⟩`; on a
/// well-conditioned kernel both paths select identical items (log-det agrees
/// to rounding, not bitwise: the arithmetic reassociates).
///
/// Errors: [`DppError::CardinalityTooLarge`] when `k > m`, and
/// [`DppError::NumericalBreakdown`] when a residual drifts below
/// `-ws.guard × max_initial_gain` or turns non-finite (see module docs) —
/// the workspace selection is meaningless after a breakdown.
pub fn greedy_map_dual_with(
    b: &Matrix,
    jitter: f64,
    k: usize,
    ws: &mut DualMapWorkspace,
) -> Result<()> {
    let m = b.rows();
    let d = b.cols();
    if k > m {
        return Err(DppError::CardinalityTooLarge { k, ground_size: m });
    }
    ws.d2.clear();
    ws.d2
        .extend((0..m).map(|i| lkp_linalg::ops::dot(b.row(i), b.row(i)) + jitter));
    ws.c.reset(m, k.max(1));
    ws.cj.clear();
    ws.cj.resize(k, 0.0);
    ws.bj.clear();
    ws.bj.resize(d, 0.0);
    ws.in_set.clear();
    ws.in_set.resize(m, false);
    ws.selected.clear();
    ws.gains.clear();
    ws.log_det = 0.0;

    // Breakdown scale: residuals start at the diagonal and only shrink, so
    // the largest initial gain bounds every honest residual in the run.
    let scale = ws.d2.iter().cloned().fold(0.0_f64, f64::max);
    let floor = -ws.guard * scale.max(f64::MIN_POSITIVE);

    while ws.selected.len() < k {
        // argmax over remaining candidates — same tie-break as the dense
        // path (first maximum wins).
        let mut best: Option<(usize, f64)> = None;
        for i in 0..m {
            if ws.in_set[i] {
                continue;
            }
            match best {
                Some((_, bd)) if ws.d2[i] <= bd => {}
                _ => best = Some((i, ws.d2[i])),
            }
        }
        let (j, gain) = best.ok_or(DppError::DegenerateKernel)?;
        if !gain.is_finite() {
            return Err(DppError::NumericalBreakdown);
        }
        if gain <= 1e-12 {
            // Kernel rank exhausted: no size-k subset with positive volume
            // extends the current one.
            break;
        }
        let dj = gain.sqrt();
        ws.log_det += gain.ln();
        ws.in_set[j] = true;
        let depth = ws.selected.len();

        // Update residuals of all remaining candidates against the newly
        // selected column j: e_i = (⟨b_j, b_i⟩ − ⟨c_j, c_i⟩) / d_j.
        ws.cj[..depth].copy_from_slice(&ws.c.row(j)[..depth]);
        ws.bj.copy_from_slice(b.row(j));
        for i in 0..m {
            if ws.in_set[i] {
                continue;
            }
            let ci = ws.c.row_mut(i);
            let mut dot = 0.0;
            for (a, bb) in ws.cj[..depth].iter().zip(ci.iter()) {
                dot += a * bb;
            }
            let l_ji = lkp_linalg::ops::dot(&ws.bj, b.row(i));
            let e = (l_ji - dot) / dj;
            ci[depth] = e;
            ws.d2[i] -= e * e;
            if !ws.d2[i].is_finite() || ws.d2[i] < floor {
                return Err(DppError::NumericalBreakdown);
            }
        }
        ws.selected.push(j);
        ws.gains.push(gain);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{greedy_map_with, MapWorkspace};
    use crate::DppError;

    /// Deterministic pseudo-random `m × d` factor with continuous values
    /// (coarse grids would manufacture exact ties the dense/dual tie-break
    /// comparison can't distinguish from real agreement).
    fn random_factor(m: usize, d: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        Matrix::from_fn(m, d, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    /// Dense `B·Bᵀ + jitter·I` for the reference path.
    fn densify(b: &Matrix, jitter: f64) -> Matrix {
        let m = b.rows();
        let mut l = Matrix::from_fn(m, m, |i, j| lkp_linalg::ops::dot(b.row(i), b.row(j)));
        for i in 0..m {
            l[(i, i)] += jitter;
        }
        l
    }

    #[test]
    fn dual_matches_dense_selection_and_gains() {
        let mut dense = MapWorkspace::new();
        let mut dual = DualMapWorkspace::new();
        for seed in 0..8 {
            let b = random_factor(20, 6, seed);
            let l = densify(&b, 1e-6);
            for k in [1, 3, 7, 12] {
                greedy_map_with(&l, k, &mut dense).unwrap();
                greedy_map_dual_with(&b, 1e-6, k, &mut dual).unwrap();
                assert_eq!(dense.items(), dual.items(), "seed={seed} k={k}");
                assert!(
                    (dense.log_det() - dual.log_det()).abs()
                        < 1e-9 * dense.log_det().abs().max(1.0),
                    "seed={seed} k={k}: {} vs {}",
                    dense.log_det(),
                    dual.log_det()
                );
            }
        }
    }

    #[test]
    fn rank_deficient_factor_stops_at_rank() {
        // d = 3 ⇒ kernel rank ≤ 3 (jitter 0): greedy with k = 6 must stop.
        let b = random_factor(10, 3, 5);
        let mut ws = DualMapWorkspace::new();
        greedy_map_dual_with(&b, 0.0, 6, &mut ws).unwrap();
        assert!(ws.items().len() <= 3, "selected {:?}", ws.items());
        assert_eq!(ws.gains().len(), ws.items().len());
    }

    #[test]
    fn workspace_reuse_is_deterministic_across_shapes() {
        let mut ws = DualMapWorkspace::new();
        for (m, d, seed, k) in [(12, 4, 0, 5), (30, 8, 3, 10), (6, 2, 1, 2), (18, 5, 7, 18)] {
            let b = random_factor(m, d, seed);
            greedy_map_dual_with(&b, 1e-6, k, &mut ws).unwrap();
            let mut fresh = DualMapWorkspace::new();
            greedy_map_dual_with(&b, 1e-6, k, &mut fresh).unwrap();
            assert_eq!(ws.items(), fresh.items(), "m={m} d={d}");
            assert_eq!(ws.log_det().to_bits(), fresh.log_det().to_bits());
        }
    }

    #[test]
    fn oversized_k_is_rejected() {
        let b = random_factor(4, 2, 0);
        let mut ws = DualMapWorkspace::new();
        assert!(matches!(
            greedy_map_dual_with(&b, 1e-6, 5, &mut ws),
            Err(DppError::CardinalityTooLarge { .. })
        ));
    }

    #[test]
    fn k_zero_and_empty_factor_are_empty() {
        let mut ws = DualMapWorkspace::new();
        greedy_map_dual_with(&random_factor(4, 2, 0), 1e-6, 0, &mut ws).unwrap();
        assert!(ws.items().is_empty());
        assert_eq!(ws.log_det(), 0.0);
        greedy_map_dual_with(&Matrix::zeros(0, 3), 1e-6, 0, &mut ws).unwrap();
        assert!(ws.items().is_empty());
    }

    #[test]
    fn negative_guard_forces_breakdown() {
        // guard < 0 ⇒ floor > 0 ⇒ every post-update residual (they only
        // shrink) trips the check on the first greedy step.
        let b = random_factor(10, 4, 2);
        let mut ws = DualMapWorkspace::new();
        ws.guard = -1.0;
        assert!(matches!(
            greedy_map_dual_with(&b, 1e-6, 3, &mut ws),
            Err(DppError::NumericalBreakdown)
        ));
        // The same workspace recovers once the guard is sane again.
        ws.guard = DUAL_BREAKDOWN_GUARD;
        greedy_map_dual_with(&b, 1e-6, 3, &mut ws).unwrap();
        assert_eq!(ws.items().len(), 3);
    }

    #[test]
    fn non_finite_factor_is_a_breakdown_not_garbage() {
        let mut b = random_factor(6, 3, 4);
        b[(2, 1)] = f64::NAN;
        let mut ws = DualMapWorkspace::new();
        assert!(matches!(
            greedy_map_dual_with(&b, 1e-6, 3, &mut ws),
            Err(DppError::NumericalBreakdown)
        ));
    }
}
