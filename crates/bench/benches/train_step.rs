//! End-to-end per-instance training cost of each criterion on MF — the
//! overhead LkP pays for set-level ranking (one eigendecomposition + two
//! determinant gradients per instance) against BPR's two dot products.

use criterion::{criterion_group, criterion_main, Criterion};
use lkp_core::baselines::{Bpr, S2SRank, SetRank};
use lkp_core::objective::{LkpKind, LkpObjective};
use lkp_core::{train_diversity_kernel, DiversityKernelConfig, Objective};
use lkp_data::{GroundSetInstance, SyntheticConfig};
use lkp_models::Recommender;
use lkp_nn::AdamConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_train_step(c: &mut Criterion) {
    let data = lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 80,
        n_items: 200,
        n_categories: 12,
        mean_interactions: 20.0,
        ..Default::default()
    });
    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig { epochs: 3, pairs_per_epoch: 64, dim: 8, ..Default::default() },
    );
    let mut rng = StdRng::seed_from_u64(5);
    let mut model = lkp_models::MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        32,
        AdamConfig::default(),
        &mut rng,
    );
    let set_inst =
        GroundSetInstance { user: 3, positives: vec![0, 5, 9, 14, 20], negatives: vec![50, 61, 72, 83, 94] };
    let pair_inst = GroundSetInstance { user: 3, positives: vec![0], negatives: vec![50] };
    let list_inst = GroundSetInstance { user: 3, positives: vec![0], negatives: vec![50, 61, 72, 83, 94] };

    let mut group = c.benchmark_group("train_step_mf");
    group.sample_size(40);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));

    let mut lkp_ps = LkpObjective::new(LkpKind::PositiveOnly, kernel.clone());
    group.bench_function("lkp_ps_k5", |b| {
        b.iter(|| {
            let loss = lkp_ps.apply(&mut model, black_box(&set_inst));
            model.step();
            loss
        })
    });
    let mut lkp_nps = LkpObjective::new(LkpKind::NegativeAware, kernel.clone());
    group.bench_function("lkp_nps_k5", |b| {
        b.iter(|| {
            let loss = lkp_nps.apply(&mut model, black_box(&set_inst));
            model.step();
            loss
        })
    });
    group.bench_function("bpr", |b| {
        let mut obj = Bpr;
        b.iter(|| {
            let loss = obj.apply(&mut model, black_box(&pair_inst));
            model.step();
            loss
        })
    });
    group.bench_function("setrank_n5", |b| {
        let mut obj = SetRank;
        b.iter(|| {
            let loss = obj.apply(&mut model, black_box(&list_inst));
            model.step();
            loss
        })
    });
    group.bench_function("s2srank_k5n5", |b| {
        let mut obj = S2SRank::default();
        b.iter(|| {
            let loss = obj.apply(&mut model, black_box(&set_inst));
            model.step();
            loss
        })
    });
    group.finish();
}

criterion_group!(benches, bench_train_step);
criterion_main!(benches);
