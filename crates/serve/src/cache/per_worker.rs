//! The per-worker (lock-free) kernel-cache backend.

use super::{evict_lru, CacheEntry, ShardStats};
use lkp_dpp::LowRankKernel;
use lkp_linalg::Matrix;
use std::collections::HashMap;

/// A bounded per-user cache of candidate-set diversity submatrices `K_C`,
/// owned by one pool worker (no locks; see the module docs for the
/// shared-backend alternative).
///
/// Eviction is least-recently-used, and every call shrinks the cache
/// **down to** the current `capacity` — so lowering the capacity of a
/// long-lived cache takes effect on the next access instead of leaving it
/// permanently over its bound.
#[derive(Default)]
pub(crate) struct KernelCache {
    entries: HashMap<usize, CacheEntry>,
    /// Assembly target when caching is disabled (`capacity == 0`).
    uncached: Matrix,
    /// Eviction scratch: reused by [`evict_lru`], retains the pairs evicted
    /// by the most recent shrink (oldest first).
    evicted: Vec<(u64, usize)>,
    tick: u64,
    hits: u64,
    misses: u64,
    /// `capacity == 0` passthrough assemblies — deliberate cache bypasses,
    /// counted separately so they cannot skew hit-rate reporting.
    bypasses: u64,
    /// Entries inserted by prewarming (not misses).
    prewarmed: u64,
}

impl KernelCache {
    /// Returns the diversity submatrix for `(user, candidates)` and whether
    /// it was served from cache.
    pub(crate) fn get_or_assemble(
        &mut self,
        user: usize,
        candidates: &[usize],
        kernel: &LowRankKernel,
        capacity: usize,
    ) -> (&Matrix, bool) {
        self.tick += 1;
        if capacity == 0 {
            // Caching disabled: a deliberate bypass, not a miss — entries
            // from an earlier non-zero capacity are dropped eagerly.
            self.bypasses += 1;
            self.entries.clear();
            kernel
                .submatrix_into(candidates, &mut self.uncached)
                .expect("candidates validated by caller");
            return (&self.uncached, false);
        }
        if let Some(entry) = self.entries.get_mut(&user) {
            if entry.candidates == candidates {
                entry.last_used = self.tick;
                self.hits += 1;
                // The hit has the newest tick, so it survives the shrink at
                // any capacity ≥ 1 even if the budget was just lowered.
                evict_lru(&mut self.entries, capacity, &mut self.evicted);
                let entry = &self.entries[&user];
                return (&entry.k_sub, true);
            }
        }
        self.misses += 1;
        let tick = self.tick;
        self.entries
            .entry(user)
            .or_insert_with(CacheEntry::empty)
            .fill(candidates, kernel, tick);
        evict_lru(&mut self.entries, capacity, &mut self.evicted);
        (&self.entries[&user].k_sub, false)
    }

    /// Inserts `(user, candidates)` ahead of traffic. Counts as a prewarm,
    /// not a miss, and is strictly *monotone*: it only fills empty capacity
    /// (touching an already-resident matching entry), never evicting or
    /// overwriting a resident entry — a full cache refuses new users and a
    /// resident user with a different pool keeps its pool. Anything else
    /// would silently break the "first request hits" guarantee for a pair
    /// an earlier prewarm already reported warmed. Returns whether the
    /// pair is warm (resident with exactly these candidates) when the
    /// call returns — assembled now or already resident; only fresh
    /// assemblies bump the `prewarmed` counter.
    pub(crate) fn prewarm(
        &mut self,
        user: usize,
        candidates: &[usize],
        kernel: &LowRankKernel,
        capacity: usize,
    ) -> bool {
        if capacity == 0 {
            return false;
        }
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&user) {
            if entry.candidates == candidates {
                entry.last_used = self.tick;
                return true;
            }
            return false;
        }
        if self.entries.len() >= capacity {
            return false;
        }
        self.prewarmed += 1;
        let tick = self.tick;
        self.entries
            .entry(user)
            .or_insert_with(CacheEntry::empty)
            .fill(candidates, kernel, tick);
        evict_lru(&mut self.entries, capacity, &mut self.evicted);
        true
    }

    /// Replaces this worker's resident set with a clone of `staged` (the
    /// prewarmed template of a new artifact generation), retiring every
    /// old-generation entry. Traffic counters (`hits`/`misses`/`bypasses`)
    /// survive the swap — they describe the worker's lifetime, not one
    /// generation — while `prewarmed` absorbs the template's count once per
    /// worker (each worker really does hold its own warm copy). The tick
    /// clock only moves forward so adopted `last_used` stamps stay ordered
    /// against future accesses. Returns how many entries were retired.
    pub(crate) fn adopt(&mut self, staged: &KernelCache) -> usize {
        let retired = self.entries.len();
        self.entries.clear();
        for (&user, entry) in &staged.entries {
            self.entries.insert(user, entry.clone());
        }
        self.tick = self.tick.max(staged.tick);
        self.prewarmed += staged.prewarmed;
        retired
    }

    /// Full counter row for aggregate reporting. Disabled-cache
    /// passthroughs (`capacity == 0`) are counted as `bypasses`, not
    /// misses, so a hit rate derived from the row reflects only lookups the
    /// cache was actually allowed to serve.
    pub(crate) fn shard_stats(&self) -> ShardStats {
        ShardStats {
            hits: self.hits,
            misses: self.misses,
            bypasses: self.bypasses,
            prewarmed: self.prewarmed,
            resident: self.entries.len(),
        }
    }

    /// Resident users.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// The `(last_used, user)` pairs evicted by the most recent shrink, in
    /// eviction order (oldest first).
    #[cfg(test)]
    pub(crate) fn last_evicted(&self) -> &[(u64, usize)] {
        &self.evicted
    }

    /// Whether `user` is resident (any candidate list).
    #[cfg(test)]
    pub(crate) fn contains(&self, user: usize) -> bool {
        self.entries.contains_key(&user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> LowRankKernel {
        let v = Matrix::from_fn(300, 3, |r, c| (((r * 7 + c * 5) % 9) as f64) * 0.3 - 1.0);
        LowRankKernel::new(v).normalized()
    }

    #[test]
    fn hit_returns_bit_exact_matrix() {
        let kern = kernel();
        let mut cache = KernelCache::default();
        let cands = vec![1, 4, 7];
        let (first, hit1) = cache.get_or_assemble(0, &cands, &kern, 4);
        let first = first.clone();
        assert!(!hit1);
        let (second, hit2) = cache.get_or_assemble(0, &cands, &kern, 4);
        assert!(hit2);
        assert_eq!(first.as_slice(), second.as_slice());
        let fresh = kern.submatrix(&cands).unwrap();
        assert_eq!(first.as_slice(), fresh.as_slice());
    }

    #[test]
    fn changed_candidates_invalidate_entry() {
        let kern = kernel();
        let mut cache = KernelCache::default();
        cache.get_or_assemble(0, &[1, 2], &kern, 4);
        let (m, hit) = cache.get_or_assemble(0, &[2, 3], &kern, 4);
        assert!(!hit);
        assert_eq!(m.as_slice(), kern.submatrix(&[2, 3]).unwrap().as_slice());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_keeps_cache_bounded_and_lru() {
        let kern = kernel();
        let mut cache = KernelCache::default();
        cache.get_or_assemble(0, &[1], &kern, 2);
        cache.get_or_assemble(1, &[2], &kern, 2);
        // Touch user 0 so user 1 is the LRU.
        cache.get_or_assemble(0, &[1], &kern, 2);
        cache.get_or_assemble(2, &[3], &kern, 2);
        assert_eq!(cache.len(), 2);
        let (_, hit_user0) = cache.get_or_assemble(0, &[1], &kern, 2);
        assert!(hit_user0, "recently used entry must survive eviction");
        let (_, hit_user1) = cache.get_or_assemble(1, &[2], &kern, 2);
        assert!(!hit_user1, "LRU entry must have been evicted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let kern = kernel();
        let mut cache = KernelCache::default();
        let (_, hit1) = cache.get_or_assemble(0, &[1, 2], &kern, 0);
        let (_, hit2) = cache.get_or_assemble(0, &[1, 2], &kern, 0);
        assert!(!hit1 && !hit2);
        assert_eq!(cache.len(), 0);
        // Deliberate bypasses must not read as misses in hit-rate stats.
        let stats = cache.shard_stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
        assert_eq!(stats.bypasses, 2);
    }

    #[test]
    fn lowering_capacity_shrinks_an_over_full_cache() {
        let kern = kernel();
        let mut cache = KernelCache::default();
        for u in 0..4 {
            cache.get_or_assemble(u, &[u, u + 1], &kern, 4);
        }
        assert_eq!(cache.len(), 4);
        // Capacity lowered between calls: the next access (here a hit on
        // user 3) must evict down to the new bound, keeping the hit entry.
        let (_, hit) = cache.get_or_assemble(3, &[3, 4], &kern, 1);
        assert!(hit, "the touched entry survives the shrink");
        assert_eq!(cache.len(), 1, "cache must come down to capacity");
        // And a miss-path access under the lowered bound also stays bounded.
        cache.get_or_assemble(7, &[7, 8], &kern, 1);
        assert_eq!(cache.len(), 1);
        let (_, hit7) = cache.get_or_assemble(7, &[7, 8], &kern, 1);
        assert!(hit7, "the freshly inserted entry is the resident one");
    }

    #[test]
    fn sharp_capacity_drop_evicts_in_one_pass_oldest_first() {
        // Regression: shrink used to rescan all entries once per eviction —
        // O(entries²) when the capacity drops sharply. The one-pass path
        // must keep exactly the newest entries and report the evicted set
        // oldest-first. 256 → 4 is the shape from the bug report.
        let kern = kernel();
        let mut cache = KernelCache::default();
        for u in 0..256 {
            cache.get_or_assemble(u, &[u], &kern, 256);
        }
        assert_eq!(cache.len(), 256);
        // The shrink happens on the next access; touch user 255 (a hit, so
        // it carries the newest tick) under the new bound.
        let (_, hit) = cache.get_or_assemble(255, &[255], &kern, 4);
        assert!(hit);
        assert_eq!(cache.len(), 4);
        // Survivors: the 4 newest ticks = users 253, 254, 255 (touched
        // twice) and 252 — insertion ticks were 1..=256, the touch is 257.
        for survivor in [252, 253, 254, 255] {
            assert!(cache.contains(survivor), "user {survivor} must survive");
        }
        // Eviction order: strictly ascending last_used ticks, i.e. users
        // 0, 1, …, 251 in insertion order.
        let evicted = cache.last_evicted().to_vec();
        assert_eq!(evicted.len(), 252);
        assert!(
            evicted.windows(2).all(|w| w[0].0 < w[1].0),
            "evictions must run oldest-first"
        );
        assert_eq!(
            evicted.iter().map(|&(_, u)| u).collect::<Vec<_>>(),
            (0..252).collect::<Vec<_>>()
        );
    }

    #[test]
    fn toggling_capacity_to_zero_drops_residents() {
        let kern = kernel();
        let mut cache = KernelCache::default();
        cache.get_or_assemble(0, &[1, 2], &kern, 4);
        assert_eq!(cache.len(), 1);
        cache.get_or_assemble(0, &[1, 2], &kern, 0);
        assert_eq!(cache.len(), 0, "disabled cache must not retain entries");
        // Re-enabling starts cold.
        let (_, hit) = cache.get_or_assemble(0, &[1, 2], &kern, 4);
        assert!(!hit);
    }

    #[test]
    fn prewarm_inserts_without_counting_misses() {
        let kern = kernel();
        let mut cache = KernelCache::default();
        assert!(cache.prewarm(3, &[1, 4], &kern, 4));
        // Re-prewarming a resident pair reports it warm without a second
        // assembly, and a resident user is never overwritten by a
        // different pool.
        assert!(cache.prewarm(3, &[1, 4], &kern, 4));
        assert!(!cache.prewarm(3, &[2, 6], &kern, 4));
        let stats = cache.shard_stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
        assert_eq!(stats.prewarmed, 1);
        // Traffic on the prewarmed pair is a pure hit.
        let (m, hit) = cache.get_or_assemble(3, &[1, 4], &kern, 4);
        assert!(hit);
        assert_eq!(m.as_slice(), kern.submatrix(&[1, 4]).unwrap().as_slice());
        let stats = cache.shard_stats();
        assert_eq!((stats.hits, stats.misses), (1, 0));
        // Disabled cache ignores prewarm.
        assert!(!cache.prewarm(9, &[2], &kern, 0));
    }

    #[test]
    fn prewarm_overflow_refuses_instead_of_evicting() {
        // A plan larger than the capacity must warm a prefix and keep it —
        // not churn the warm set so that *no* pair survives.
        let kern = kernel();
        let mut cache = KernelCache::default();
        let warmed = (0..8)
            .filter(|&u| cache.prewarm(u, &[u, u + 1], &kern, 3))
            .count();
        assert_eq!(warmed, 3, "only the first `capacity` pairs are accepted");
        assert_eq!(cache.len(), 3);
        for u in 0..3 {
            let (_, hit) = cache.get_or_assemble(u, &[u, u + 1], &kern, 3);
            assert!(hit, "accepted pair {u} must keep its first-request hit");
        }
    }
}
