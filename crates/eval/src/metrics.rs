//! Ranking metrics (paper Section IV-A2).

use lkp_data::Dataset;

/// One row of metrics at a single cutoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Recall@N (`Re` in the paper's tables).
    pub recall: f64,
    /// NDCG@N (`Nd`).
    pub ndcg: f64,
    /// Category Coverage@N (`CC`): distinct categories in the top-N divided
    /// by the catalog's category count.
    pub category_coverage: f64,
    /// Harmonic F@N between quality (NDCG) and diversity (CC).
    pub f_score: f64,
    /// Intra-list distance over categories: fraction of top-N item pairs in
    /// different categories.
    pub ild: f64,
}

impl Metrics {
    /// All-zero metrics (accumulator identity).
    pub fn zero() -> Self {
        Metrics {
            recall: 0.0,
            ndcg: 0.0,
            category_coverage: 0.0,
            f_score: 0.0,
            ild: 0.0,
        }
    }

    /// Element-wise accumulation.
    pub fn accumulate(&mut self, other: &Metrics) {
        self.recall += other.recall;
        self.ndcg += other.ndcg;
        self.category_coverage += other.category_coverage;
        self.f_score += other.f_score;
        self.ild += other.ild;
    }

    /// Element-wise scaling (used when averaging over users).
    pub fn scale(&mut self, factor: f64) {
        self.recall *= factor;
        self.ndcg *= factor;
        self.category_coverage *= factor;
        self.f_score *= factor;
        self.ild *= factor;
    }
}

/// Metrics for all cutoffs of one evaluation run.
#[derive(Debug, Clone)]
pub struct MetricSet {
    cutoffs: Vec<usize>,
    rows: Vec<Metrics>,
    n_users: usize,
}

impl MetricSet {
    /// Averages accumulated per-user metrics.
    pub fn from_accumulated(mut rows: Vec<Metrics>, cutoffs: Vec<usize>, n_users: usize) -> Self {
        if n_users > 0 {
            for r in &mut rows {
                r.scale(1.0 / n_users as f64);
            }
        }
        MetricSet {
            cutoffs,
            rows,
            n_users,
        }
    }

    /// Metrics at a specific cutoff, if it was evaluated.
    pub fn at(&self, cutoff: usize) -> Option<&Metrics> {
        self.cutoffs
            .iter()
            .position(|&c| c == cutoff)
            .map(|i| &self.rows[i])
    }

    /// Evaluated cutoffs.
    pub fn cutoffs(&self) -> &[usize] {
        &self.cutoffs
    }

    /// Number of users with non-empty test sets.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Formats the paper's 12-column row:
    /// `Re@5 Re@10 Re@20 Nd@5 Nd@10 Nd@20 CC@5 CC@10 CC@20 F@5 F@10 F@20`
    /// using whatever cutoffs are present.
    pub fn table_row(&self, label: &str) -> String {
        let mut cols = vec![format!("{label:<14}")];
        for get in [
            |m: &Metrics| m.recall,
            |m: &Metrics| m.ndcg,
            |m: &Metrics| m.category_coverage,
            |m: &Metrics| m.f_score,
        ] {
            for r in &self.rows {
                cols.push(format!("{:.4}", get(r)));
            }
        }
        cols.join(" ")
    }
}

/// Computes the metrics of a single user's top-N list.
///
/// `top` is the recommendation list, `test` the held-out ground truth, `n`
/// the nominal cutoff. A list longer than `n` is truncated here: every
/// metric@n must only see the first `n` positions — an unclamped tail would
/// inflate recall/coverage and push DCG past the positions IDCG normalizes
/// over (NDCG > 1).
pub fn user_metrics(top: &[usize], test: &[usize], data: &Dataset, n: usize) -> Metrics {
    let top = &top[..top.len().min(n)];
    let hits: usize = top.iter().filter(|i| test.contains(i)).count();
    let recall = if test.is_empty() {
        0.0
    } else {
        hits as f64 / test.len() as f64
    };

    // Binary-relevance NDCG: DCG over hit positions, IDCG assumes all of the
    // first min(n, |test|) positions are hits.
    let mut dcg = 0.0;
    for (pos, item) in top.iter().enumerate() {
        if test.contains(item) {
            dcg += 1.0 / ((pos + 2) as f64).log2();
        }
    }
    let ideal_hits = n.min(test.len());
    let idcg: f64 = (0..ideal_hits)
        .map(|pos| 1.0 / ((pos + 2) as f64).log2())
        .sum();
    let ndcg = if idcg > 0.0 { dcg / idcg } else { 0.0 };

    let category_coverage = if data.n_categories() == 0 {
        0.0
    } else {
        data.category_coverage(top) as f64 / data.n_categories() as f64
    };

    let f_score = harmonic(ndcg, category_coverage);

    // ILD: average pairwise categorical distance (1 if categories differ).
    let ild = if top.len() < 2 {
        0.0
    } else {
        let mut diff = 0usize;
        let mut pairs = 0usize;
        for a in 0..top.len() {
            for b in (a + 1)..top.len() {
                pairs += 1;
                if data.category(top[a]) != data.category(top[b]) {
                    diff += 1;
                }
            }
        }
        diff as f64 / pairs as f64
    };

    Metrics {
        recall,
        ndcg,
        category_coverage,
        f_score,
        ild,
    }
}

/// Harmonic mean, 0 when either input is 0.
pub fn harmonic(a: f64, b: f64) -> f64 {
    if a + b <= 0.0 {
        0.0
    } else {
        2.0 * a * b / (a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data() -> Dataset {
        let mut rng = StdRng::seed_from_u64(0);
        // 1 user, 10 items, categories 0..4 cycling.
        Dataset::from_interactions(
            vec![(0..10).collect()],
            (0..10).map(|i| i % 5).collect(),
            5,
            &mut rng,
        )
    }

    #[test]
    fn perfect_list_gets_ndcg_one() {
        let d = data();
        let test = vec![3, 7, 9];
        let m = user_metrics(&[3, 7, 9, 0, 1], &test, &d, 5);
        assert!((m.ndcg - 1.0).abs() < 1e-12);
        assert!((m.recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn late_hits_score_lower_than_early_hits() {
        let d = data();
        let test = vec![3];
        let early = user_metrics(&[3, 0, 1, 2, 4], &test, &d, 5);
        let late = user_metrics(&[0, 1, 2, 4, 3], &test, &d, 5);
        assert!(early.ndcg > late.ndcg);
        assert_eq!(early.recall, late.recall);
    }

    #[test]
    fn no_hits_is_zero() {
        let d = data();
        let m = user_metrics(&[0, 1], &[5], &d, 5);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.ndcg, 0.0);
        assert_eq!(m.f_score, 0.0);
    }

    #[test]
    fn category_coverage_counts_distinct_over_total() {
        let d = data();
        // items 0,5 share category 0; item 1 is category 1.
        let m = user_metrics(&[0, 5, 1], &[0], &d, 3);
        assert!((m.category_coverage - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn ild_extremes() {
        let d = data();
        // Same category twice: ILD 0. All distinct categories: ILD 1.
        assert_eq!(user_metrics(&[0, 5], &[0], &d, 2).ild, 0.0);
        assert_eq!(user_metrics(&[0, 1, 2], &[0], &d, 3).ild, 1.0);
    }

    #[test]
    fn harmonic_mean_properties() {
        assert_eq!(harmonic(0.0, 0.5), 0.0);
        assert!((harmonic(0.4, 0.4) - 0.4).abs() < 1e-12);
        assert!(harmonic(0.2, 0.8) < 0.5); // dominated by the smaller value
    }

    #[test]
    fn overlong_list_cannot_inflate_ndcg_past_one() {
        let d = data();
        // 8 recommendations, all of them hits, against a nominal cutoff of
        // n = 5: positions 5..8 must NOT contribute DCG (IDCG only covers
        // the first 5), or NDCG would exceed 1.
        let top: Vec<usize> = (0..8).collect();
        let test: Vec<usize> = (0..8).collect();
        let m = user_metrics(&top, &test, &d, 5);
        assert!(
            (m.ndcg - 1.0).abs() < 1e-12,
            "over-long all-hit list must clamp to NDCG 1, got {}",
            m.ndcg
        );
        // Also with partial hits: the over-long tail hit is ignored by
        // every metric — NDCG, recall, and coverage agree on the cutoff.
        let m = user_metrics(&[0, 9, 9, 9, 9, 1], &[0, 1], &d, 5);
        let expected = (1.0 / 2.0_f64.log2()) / (1.0 / 2.0_f64.log2() + 1.0 / 3.0_f64.log2());
        assert!(
            (m.ndcg - expected).abs() < 1e-12,
            "tail position must not count: {} vs {expected}",
            m.ndcg
        );
        assert!(m.ndcg <= 1.0);
        assert!(
            (m.recall - 0.5).abs() < 1e-12,
            "tail hit must not count toward recall: {}",
            m.recall
        );
        // Truncated list {0, 9} covers categories {0, 4}: 2 of 5 — the
        // tail's category 1 (item 1) is excluded.
        assert!((m.category_coverage - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn overlong_list_matches_pre_truncated_call() {
        // user_metrics(long, n) ≡ user_metrics(&long[..n], n) — the
        // documented contract that `top` is the top-n list, enforced
        // internally.
        let d = data();
        let long: Vec<usize> = vec![3, 0, 7, 1, 9, 2, 4];
        let test = vec![3, 7, 2];
        let a = user_metrics(&long, &test, &d, 4);
        let b = user_metrics(&long[..4], &test, &d, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn idcg_uses_min_of_cutoff_and_test_size() {
        let d = data();
        // Only one test item: a hit at rank 1 among N=5 must give NDCG 1.
        let m = user_metrics(&[7, 0, 1, 2, 4], &[7], &d, 5);
        assert!((m.ndcg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metric_set_lookup_and_row() {
        let rows = vec![Metrics {
            recall: 1.0,
            ndcg: 0.5,
            category_coverage: 0.2,
            f_score: 0.3,
            ild: 0.1,
        }];
        let set = MetricSet::from_accumulated(rows, vec![5], 2);
        let at5 = set.at(5).unwrap();
        assert!((at5.recall - 0.5).abs() < 1e-12, "averaged over 2 users");
        assert!(set.at(10).is_none());
        assert!(set.table_row("test").starts_with("test"));
    }
}
