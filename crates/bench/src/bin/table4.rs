//! Table IV — GCMC and NeuMF baselines against their LkP-reworked
//! counterparts (original objective replaced by LkP-PS / LkP-NPS).
//!
//! GCMC originally trains with a softmax/NLL decoder loss and NeuMF with
//! BCE; both reduce to the BCE objective under binary implicit feedback, so
//! the baseline rows train with `Bce` and the reworked rows swap in the LkP
//! objectives — exactly the paper's "replacing their original recommendation
//! objective function" protocol.

use lkp_bench::{print_table_header, print_table_row, ExpArgs, PRESETS};
use lkp_core::baselines::Bce;
use lkp_core::objective::{LkpKind, LkpObjective};
use lkp_data::TargetSelection;
use lkp_eval::MetricSet;

fn main() {
    let args = ExpArgs::parse();
    for preset in PRESETS {
        println!("== Table IV [{}] (k=n={}) ==", preset.name(), args.k);
        let data = args.dataset(preset);
        let kernel = args.diversity_kernel(&data);
        print_table_header();

        // --- GCMC block ---
        let gcmc_rows = {
            let mut base = args.gcmc(&data);
            let baseline = lkp_bench::run_on_model(
                &args,
                &data,
                &mut base,
                &mut Bce,
                TargetSelection::Sequential,
            );
            print_table_row("GCMC", &baseline.metrics);
            let mut ps_model = args.gcmc(&data);
            let ps = lkp_bench::run_on_model(
                &args,
                &data,
                &mut ps_model,
                &mut LkpObjective::new(LkpKind::PositiveOnly, kernel.clone()),
                TargetSelection::Sequential,
            );
            print_table_row("GCMC-PS", &ps.metrics);
            let mut nps_model = args.gcmc(&data);
            let nps = lkp_bench::run_on_model(
                &args,
                &data,
                &mut nps_model,
                &mut LkpObjective::new(LkpKind::NegativeAware, kernel.clone()),
                TargetSelection::Sequential,
            );
            print_table_row("GCMC-NPS", &nps.metrics);
            (baseline.metrics, ps.metrics, nps.metrics)
        };
        print_improvement("GCMC", &gcmc_rows);

        // --- NeuMF block ---
        let neumf_rows = {
            let mut base = args.neumf(&data);
            let baseline = lkp_bench::run_on_model(
                &args,
                &data,
                &mut base,
                &mut Bce,
                TargetSelection::Sequential,
            );
            print_table_row("NeuMF", &baseline.metrics);
            let mut ps_model = args.neumf(&data);
            let ps = lkp_bench::run_on_model(
                &args,
                &data,
                &mut ps_model,
                &mut LkpObjective::new(LkpKind::PositiveOnly, kernel.clone()),
                TargetSelection::Sequential,
            );
            print_table_row("NeuMF-PS", &ps.metrics);
            let mut nps_model = args.neumf(&data);
            let nps = lkp_bench::run_on_model(
                &args,
                &data,
                &mut nps_model,
                &mut LkpObjective::new(LkpKind::NegativeAware, kernel),
                TargetSelection::Sequential,
            );
            print_table_row("NeuMF-NPS", &nps.metrics);
            (baseline.metrics, ps.metrics, nps.metrics)
        };
        print_improvement("NeuMF", &neumf_rows);
        println!();
    }
}

fn print_improvement(name: &str, (base, ps, nps): &(MetricSet, MetricSet, MetricSet)) {
    let mut parts = Vec::new();
    for (label, get) in [
        (
            "Re@10",
            (|m: &lkp_eval::Metrics| m.recall) as fn(&lkp_eval::Metrics) -> f64,
        ),
        ("Nd@10", |m| m.ndcg),
        ("CC@10", |m| m.category_coverage),
        ("F@10", |m| m.f_score),
    ] {
        let b = get(base.at(10).unwrap());
        let best = get(ps.at(10).unwrap()).max(get(nps.at(10).unwrap()));
        parts.push(format!(
            "{label} {:+.2}%",
            lkp_bench::improvement_pct(best, b)
        ));
    }
    println!("{name} Improv: {}", parts.join("  "));
}
