//! Exact DPP and k-DPP sampling (Kulesza & Taskar, "Determinantal Point
//! Processes for Machine Learning", Algorithms 1 and 8).
//!
//! Both samplers share the two-phase spectral scheme:
//!
//! 1. **Eigenvector selection.** For a standard DPP each eigenvector `v_i` is
//!    kept independently with probability `λ_i / (1 + λ_i)`. For a k-DPP,
//!    exactly `k` eigenvectors are kept, walking the ESP table backwards so
//!    that the subset of eigenvectors is drawn with probability proportional
//!    to the product of its eigenvalues.
//! 2. **Elementary DPP sampling.** Given the selected orthonormal basis `V`,
//!    items are drawn one at a time with `P(i) ∝ Σ_j V[i,j]²`, projecting
//!    `V` onto the complement of `e_i` after each draw. This yields exactly
//!    `rank(V)` items.

use crate::{esp, DppError, DppKernel, KDpp, Result};
use lkp_linalg::Matrix;
use rand::Rng;

/// Draws one sample from the standard DPP with kernel `L` (paper Eq. 1).
///
/// The returned subset is sorted ascending; its size is random with
/// `P(|S| = k) = e_k(λ) / Π_i (1 + λ_i)`.
pub fn sample_dpp<R: Rng + ?Sized>(kernel: &DppKernel, rng: &mut R) -> Result<Vec<usize>> {
    let eig = kernel.eigen()?;
    let lambda = eig.clamped_nonnegative_values();
    let mut selected = Vec::new();
    for (i, &l) in lambda.iter().enumerate() {
        if rng.random::<f64>() < l / (1.0 + l) {
            selected.push(i);
        }
    }
    sample_elementary(&eig.vectors, &selected, rng)
}

/// Draws one size-k sample from a [`KDpp`].
pub fn sample_kdpp<R: Rng + ?Sized>(kdpp: &KDpp, rng: &mut R) -> Result<Vec<usize>> {
    let k = kdpp.k();
    if k == 0 {
        return Ok(Vec::new());
    }
    let lambda = kdpp.eigenvalues();
    let m = lambda.len();
    // Phase 1: choose exactly k eigenvectors via the ESP table (Kulesza &
    // Taskar Alg. 8). Walking m..1, include eigenvector m with probability
    // λ_m · e_{l-1}^{m-1} / e_l^{m}.
    let table = esp::esp_table(lambda, k);
    if table[k][m] <= 0.0 {
        return Err(DppError::DegenerateKernel);
    }
    let mut selected = Vec::with_capacity(k);
    let mut l = k;
    for j in (1..=m).rev() {
        if l == 0 {
            break;
        }
        if j == l {
            // Must take all remaining eigenvectors.
            for idx in (0..j).rev() {
                selected.push(idx);
            }
            l = 0;
            break;
        }
        let p = lambda[j - 1] * table[l - 1][j - 1] / table[l][j];
        if rng.random::<f64>() < p {
            selected.push(j - 1);
            l -= 1;
        }
    }
    debug_assert_eq!(l, 0, "eigenvector selection must pick exactly k vectors");
    selected.reverse();
    sample_elementary(&kdpp.eigen().vectors, &selected, rng)
}

/// Phase 2: samples from the elementary DPP spanned by the orthonormal
/// columns `cols` of `vectors`. Returns exactly `cols.len()` items.
///
/// Shared with the dual-representation sampler, which supplies item-space
/// eigenvectors recovered from the `d × d` dual kernel.
pub(crate) fn sample_elementary_from<R: Rng + ?Sized>(
    vectors: &Matrix,
    cols: &[usize],
    rng: &mut R,
) -> Result<Vec<usize>> {
    sample_elementary(vectors, cols, rng)
}

fn sample_elementary<R: Rng + ?Sized>(
    vectors: &Matrix,
    cols: &[usize],
    rng: &mut R,
) -> Result<Vec<usize>> {
    let m = vectors.rows();
    let k = cols.len();
    if k == 0 {
        return Ok(Vec::new());
    }
    // v: m × k working basis, columns orthonormal.
    let mut v = Matrix::zeros(m, k);
    for (c, &src) in cols.iter().enumerate() {
        for r in 0..m {
            v[(r, c)] = vectors[(r, src)];
        }
    }
    let mut picked = Vec::with_capacity(k);
    let mut width = k;
    while width > 0 {
        // P(i) = Σ_j v[i,j]² / width.
        let mut weights = vec![0.0; m];
        let mut total = 0.0;
        for (i, w) in weights.iter_mut().enumerate() {
            let mut s = 0.0;
            for j in 0..width {
                s += v[(i, j)] * v[(i, j)];
            }
            *w = s;
            total += s;
        }
        if total <= 0.0 {
            return Err(DppError::DegenerateKernel);
        }
        let mut t = rng.random::<f64>() * total;
        let mut item = m - 1;
        for (i, &w) in weights.iter().enumerate() {
            if t < w {
                item = i;
                break;
            }
            t -= w;
        }
        picked.push(item);

        // Project the basis onto the complement of e_item:
        // find a column with nonzero component on `item`, use it to eliminate
        // that component from the others, drop it, then re-orthonormalize.
        let mut pivot = None;
        let mut best = 0.0;
        for j in 0..width {
            let a = v[(item, j)].abs();
            if a > best {
                best = a;
                pivot = Some(j);
            }
        }
        let pivot = pivot.ok_or(DppError::DegenerateKernel)?;
        // Swap pivot column to the end (position width-1) and eliminate.
        for r in 0..m {
            let tmp = v[(r, pivot)];
            v[(r, pivot)] = v[(r, width - 1)];
            v[(r, width - 1)] = tmp;
        }
        let pivot_val = v[(item, width - 1)];
        for j in 0..(width - 1) {
            let factor = v[(item, j)] / pivot_val;
            if factor != 0.0 {
                for r in 0..m {
                    let delta = factor * v[(r, width - 1)];
                    v[(r, j)] -= delta;
                }
            }
        }
        width -= 1;
        // Modified Gram–Schmidt on the remaining `width` columns.
        for j in 0..width {
            for p in 0..j {
                let mut proj = 0.0;
                for r in 0..m {
                    proj += v[(r, j)] * v[(r, p)];
                }
                for r in 0..m {
                    let delta = proj * v[(r, p)];
                    v[(r, j)] -= delta;
                }
            }
            let mut norm = 0.0;
            for r in 0..m {
                norm += v[(r, j)] * v[(r, j)];
            }
            let norm = norm.sqrt();
            if norm <= 1e-12 {
                return Err(DppError::DegenerateKernel);
            }
            for r in 0..m {
                v[(r, j)] /= norm;
            }
        }
    }
    picked.sort_unstable();
    Ok(picked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn example_kernel(n: usize) -> DppKernel {
        let v = Matrix::from_fn(n, n, |r, c| (((r * 3 + c * 5) % 7) as f64) * 0.3 - 0.6);
        let mut g = v.gram();
        for i in 0..n {
            g[(i, i)] += 0.5;
        }
        DppKernel::new(g).unwrap()
    }

    #[test]
    fn kdpp_samples_have_exact_cardinality() {
        let kdpp = KDpp::new(example_kernel(6), 3).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let s = sample_kdpp(&kdpp, &mut rng).unwrap();
            assert_eq!(s.len(), 3);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted, distinct items");
            assert!(s.iter().all(|&i| i < 6));
        }
    }

    #[test]
    fn kdpp_empirical_frequencies_match_exact_probabilities() {
        let kdpp = KDpp::new(example_kernel(5), 2).unwrap();
        let exact: HashMap<Vec<usize>, f64> =
            kdpp.all_subset_probs().unwrap().into_iter().collect();
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 40_000;
        let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
        for _ in 0..trials {
            *counts
                .entry(sample_kdpp(&kdpp, &mut rng).unwrap())
                .or_default() += 1;
        }
        for (subset, p) in &exact {
            let freq = *counts.get(subset).unwrap_or(&0) as f64 / trials as f64;
            // 4σ binomial tolerance.
            let sigma = (p * (1.0 - p) / trials as f64).sqrt();
            assert!(
                (freq - p).abs() < 4.0 * sigma + 1e-3,
                "{subset:?}: freq {freq:.4} vs exact {p:.4}"
            );
        }
    }

    #[test]
    fn dpp_size_distribution_matches_theory() {
        let kernel = example_kernel(5);
        let lambda = kernel.nonneg_eigenvalues().unwrap();
        let norm: f64 = lambda.iter().map(|&l| 1.0 + l).product();
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 40_000;
        let mut size_counts = [0usize; 6];
        for _ in 0..trials {
            let s = sample_dpp(&kernel, &mut rng).unwrap();
            size_counts[s.len()] += 1;
        }
        for (k, &count) in size_counts.iter().enumerate() {
            let p = esp::elementary_symmetric(&lambda, k) / norm;
            let freq = count as f64 / trials as f64;
            let sigma = (p * (1.0 - p) / trials as f64).sqrt();
            assert!(
                (freq - p).abs() < 4.0 * sigma + 1e-3,
                "size {k}: freq {freq:.4} vs exact {p:.4}"
            );
        }
    }

    #[test]
    fn diverse_pairs_are_oversampled_relative_to_redundant_pairs() {
        // Items 0,1 nearly identical; item 2 orthogonal. A 2-DPP should pick
        // {0,2} or {1,2} far more often than {0,1}.
        let k = Matrix::from_rows(&[&[1.0, 0.95, 0.0], &[0.95, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
        let kern = DppKernel::new(k).unwrap();
        let kdpp = KDpp::new(kern, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut redundant = 0;
        let trials = 2_000;
        for _ in 0..trials {
            if sample_kdpp(&kdpp, &mut rng).unwrap() == vec![0, 1] {
                redundant += 1;
            }
        }
        // Exact P({0,1}) = det([[1,.95],[.95,1]])/Z ≈ 0.0975/2.0975 ≈ 0.046.
        assert!(
            (redundant as f64) < 0.10 * trials as f64,
            "redundant pair drawn {redundant}/{trials} times"
        );
    }

    #[test]
    fn k_zero_returns_empty() {
        let kdpp = KDpp::new(example_kernel(4), 0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample_kdpp(&kdpp, &mut rng).unwrap().is_empty());
    }

    #[test]
    fn k_equals_m_returns_everything() {
        let kdpp = KDpp::new(example_kernel(4), 4).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_kdpp(&kdpp, &mut rng).unwrap(), vec![0, 1, 2, 3]);
    }
}
