//! Refresh-to-serve handoff acceptance: a delta-fit produced by
//! `Trainer::update` lands in a *running* `FrontendDriver` through
//! `RankingArtifact::refresh_from` + `swap_artifact` under one generation
//! bump — no restart, bitwise per generation, and zero post-swap assembly
//! misses — in both kernel-cache modes. Also pins the artifact-level
//! no-op contract: an empty-delta refresh serves bitwise identically to
//! the base artifact.

use lkp_core::objective::{LkpKind, LkpObjective};
use lkp_core::{train_diversity_kernel, DiversityKernelConfig, TrainConfig, TrainedState, Trainer};
use lkp_data::{Dataset, DatasetDelta, SamplingPolicy, SyntheticConfig};
use lkp_dpp::LowRankKernel;
use lkp_models::MatrixFactorization;
use lkp_nn::AdamConfig;
use lkp_serve::{
    CacheMode, FrontendConfig, FrontendDriver, RankOutcome, RankRequest, RankResponse, Ranker,
    RankingArtifact, ServeConfig, ServeFrontend, SubmitError, Ticket,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn data() -> Dataset {
    lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 24,
        n_items: 70,
        n_categories: 7,
        mean_interactions: 14.0,
        ..Default::default()
    })
}

/// Frozen negatives so the fit's final plan is the one every epoch trained
/// on — the refresh warm start the pipeline is built around.
fn train_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch_size: 16,
        k: 4,
        n: 4,
        sampling_policy: SamplingPolicy::FrozenNegatives,
        eval_every: 0,
        patience: 0,
        threads: 2,
        seed: 5,
        ..Default::default()
    }
}

fn trained(data: &Dataset) -> (MatrixFactorization, LowRankKernel, TrainedState) {
    let kernel = train_diversity_kernel(
        data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 40,
            dim: 6,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(5);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        10,
        AdamConfig {
            lr: 0.02,
            ..Default::default()
        },
        &mut rng,
    );
    let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel.clone());
    let (_, state) = Trainer::new(train_cfg()).fit_state(&mut model, &mut obj, data);
    (model, kernel, state)
}

/// One previously unobserved item for each of the first eight users: a
/// proper partial delta (some users frozen, some fresh).
fn fresh_delta(data: &Dataset) -> DatasetDelta {
    let mut delta = DatasetDelta::new();
    for user in 0..8 {
        for item in 0..data.n_items() {
            if !data.is_observed(user, item) {
                delta.push(user, item);
                break;
            }
        }
    }
    delta
}

fn requests(data: &Dataset, top_n: usize) -> Vec<RankRequest> {
    (0..data.n_users())
        .map(|u| {
            let candidates: Vec<usize> = (0..20)
                .map(|j| (u * 31 + j * 17 + 7) % data.n_items())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            RankRequest::new(u, candidates, top_n)
        })
        .collect()
}

fn assert_same(got: &RankResponse, want: &RankResponse, context: &str) {
    assert_eq!(got.user, want.user, "{context}: user");
    assert_eq!(got.items, want.items, "{context}: items");
    assert_eq!(
        got.log_det.to_bits(),
        want.log_det.to_bits(),
        "{context}: log_det"
    );
}

fn serve_cfg(mode: CacheMode) -> ServeConfig {
    ServeConfig {
        threads: 2,
        cache_mode: mode,
        ..Default::default()
    }
}

fn submit_retrying(
    client: &lkp_serve::DriverClient<MatrixFactorization>,
    request: &RankRequest,
) -> Ticket {
    loop {
        match client.submit(request.clone()) {
            Ok(ticket) => return ticket,
            Err(SubmitError::QueueFull { .. }) => std::thread::yield_now(),
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
}

/// The full pipeline under live traffic: warm fit → delta `update` →
/// `refresh_from` → `swap_artifact` into a spawned driver while two
/// submitter threads stream. Per-generation responses are bitwise the
/// direct rankers', generations are monotone in ticket order, and a
/// post-swap replay of every planned request hits the swap-staged cache
/// with **zero** assembly misses — in both cache modes.
#[test]
fn refreshed_artifact_swaps_live_with_zero_post_swap_misses() {
    let data = data();
    let (model_a, kernel, base) = trained(&data);

    let delta = fresh_delta(&data);
    let mut refreshed = model_a.clone();
    let rep = Trainer::new(TrainConfig {
        update_epochs: 2,
        ..train_cfg()
    })
    .update(
        &mut refreshed,
        &mut LkpObjective::new(LkpKind::NegativeAware, kernel.clone()),
        &base,
        &delta,
    );
    assert!(!rep.no_op, "a fresh delta must actually refresh");
    assert!(rep.frozen_instances > 0, "unchanged users stay frozen");
    assert!(rep.fresh_instances > 0, "changed users resample");

    let artifact_v1 = RankingArtifact::snapshot(&model_a, &kernel);
    let artifact_v2 = artifact_v1.refresh_from(&refreshed);

    let reqs = requests(&data, 6);
    let plan: Vec<(usize, Vec<usize>)> = reqs
        .iter()
        .map(|r| (r.user, r.candidates.clone()))
        .collect();

    for mode in [CacheMode::PerWorker, CacheMode::Sharded { shards: 4 }] {
        let want_a = Ranker::new(artifact_v1.clone(), serve_cfg(mode)).rank_batch(&reqs);
        let want_b = Ranker::new(artifact_v2.clone(), serve_cfg(mode)).rank_batch(&reqs);

        let frontend = ServeFrontend::new(
            Ranker::new(artifact_v1.clone(), serve_cfg(mode)),
            FrontendConfig {
                max_batch: 8,
                max_wait: Duration::from_micros(500),
                queue_capacity: 32,
                ..Default::default()
            },
        );
        let driver = FrontendDriver::spawn(frontend);

        let rounds = 4usize;
        let handles: Vec<_> = (0..2usize)
            .map(|t| {
                let client = driver.client();
                let reqs = reqs.clone();
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    for round in 0..rounds {
                        for i in 0..reqs.len() {
                            let req = &reqs[(i + t * 11 + round) % reqs.len()];
                            let ticket = submit_retrying(&client, req);
                            out.push((req.user, ticket));
                        }
                    }
                    out.into_iter()
                        .map(|(user, ticket)| {
                            let resp = client
                                .take_deadline(ticket, Duration::from_secs(30))
                                .expect("every accepted ticket completes");
                            (user, ticket, resp)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();

        // The refresh lands mid-stream: one generation bump, every planned
        // pair staged warm before the commit.
        std::thread::sleep(Duration::from_millis(5));
        let report = driver.client().swap_artifact(artifact_v2.clone(), &plan);
        assert_eq!(report.generation, 2, "{mode:?}: one bump");
        assert_eq!(report.warmed, plan.len(), "{mode:?}: staged fully warm");

        let mut by_ticket: Vec<(Ticket, u64)> = Vec::new();
        for handle in handles {
            for (user, ticket, resp) in handle.join().expect("submitter thread") {
                assert_eq!(resp.outcome, RankOutcome::Served);
                let want = match resp.generation {
                    1 => &want_a[user],
                    2 => &want_b[user],
                    g => panic!("{mode:?}: unexpected generation {g}"),
                };
                assert_same(&resp, want, &format!("{mode:?} per-generation"));
                by_ticket.push((ticket, resp.generation));
            }
        }
        by_ticket.sort_unstable_by_key(|&(ticket, _)| ticket);
        for pair in by_ticket.windows(2) {
            assert!(
                pair[0].1 <= pair[1].1,
                "{mode:?}: generation regressed in ticket order: {pair:?}"
            );
        }
        assert_eq!(driver.client().generation(), 2);
        let stats = driver.client().stats();
        assert_eq!(stats.swaps, 1);
        assert_eq!(stats.served, stats.submitted, "no ticket lost across swap");

        // Zero post-swap assembly misses: replay every planned request on
        // the shutdown-returned frontend; the swap staged each pair warm,
        // so not a single kernel block is reassembled.
        let mut frontend = driver.shutdown().expect("no surviving clients");
        let (_, misses_before) = frontend.ranker().cache_stats();
        let tickets: Vec<Ticket> = reqs
            .iter()
            .map(|r| frontend.try_submit(r.clone()).expect("replay admitted"))
            .collect();
        frontend.flush();
        let (_, misses_after) = frontend.ranker().cache_stats();
        assert_eq!(
            misses_after - misses_before,
            0,
            "{mode:?}: post-swap traffic must hit the swap-staged entries"
        );
        for (ticket, want) in tickets.iter().zip(&want_b) {
            let resp = frontend.try_take(*ticket).expect("replayed ticket");
            assert_eq!(resp.generation, 2, "{mode:?}");
            assert_same(&resp, want, &format!("{mode:?} post-swap replay"));
        }
    }
}

/// The serving half of the no-op contract: an empty delta leaves the model
/// bitwise untouched, and `refresh_from` reuses the already-normalized
/// kernel, so the refreshed artifact serves every request bitwise
/// identically to the base artifact.
#[test]
fn empty_delta_refresh_serves_bitwise_identically() {
    let data = data();
    let (model, kernel, base) = trained(&data);
    let mut m = model.clone();
    let rep = Trainer::new(train_cfg()).update(
        &mut m,
        &mut LkpObjective::new(LkpKind::NegativeAware, kernel.clone()),
        &base,
        &DatasetDelta::new(),
    );
    assert!(rep.no_op);

    let v1 = RankingArtifact::snapshot(&model, &kernel);
    let v2 = v1.refresh_from(&m);
    let reqs = requests(&data, 6);
    let want = Ranker::new(v1, serve_cfg(CacheMode::PerWorker)).rank_batch(&reqs);
    let got = Ranker::new(v2, serve_cfg(CacheMode::PerWorker)).rank_batch(&reqs);
    for (g, w) in got.iter().zip(&want) {
        assert_same(g, w, "empty-delta refresh");
    }
}
