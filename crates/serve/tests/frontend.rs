//! Frontend integration tests: micro-batched submission must serve bitwise
//! the same lists as direct batching — at any pool width, in either cache
//! mode, cold or pre-warmed — and the cut policy must be deterministic
//! under the injected clock.

use lkp_core::objective::{LkpKind, LkpObjective};
use lkp_core::{train_diversity_kernel, DiversityKernelConfig, TrainConfig, Trainer};
use lkp_data::{Dataset, SyntheticConfig};
use lkp_dpp::LowRankKernel;
use lkp_models::MatrixFactorization;
use lkp_nn::AdamConfig;
use lkp_serve::{
    CacheMode, FrontendConfig, ManualClock, RankRequest, RankResponse, Ranker, RankingArtifact,
    ServeConfig, ServeFrontend, Ticket,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn data() -> Dataset {
    lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 24,
        n_items: 70,
        n_categories: 7,
        mean_interactions: 14.0,
        ..Default::default()
    })
}

fn trained(data: &Dataset) -> (MatrixFactorization, LowRankKernel) {
    let kernel = train_diversity_kernel(
        data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 40,
            dim: 6,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(5);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        10,
        AdamConfig {
            lr: 0.02,
            ..Default::default()
        },
        &mut rng,
    );
    let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel.clone());
    let trainer = Trainer::new(TrainConfig {
        epochs: 2,
        eval_every: 0,
        patience: 0,
        k: 4,
        n: 4,
        threads: 2,
        ..Default::default()
    });
    trainer.fit(&mut model, &mut obj, data);
    (model, kernel)
}

fn requests(data: &Dataset, top_n: usize) -> Vec<RankRequest> {
    (0..data.n_users())
        .map(|u| {
            let candidates: Vec<usize> = (0..20)
                .map(|j| (u * 31 + j * 17 + 7) % data.n_items())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            RankRequest::new(u, candidates, top_n)
        })
        .collect()
}

fn assert_same(got: &RankResponse, want: &RankResponse, context: &str) {
    assert_eq!(got.user, want.user, "{context}: user");
    assert_eq!(got.items, want.items, "{context}: items");
    assert_eq!(
        got.log_det.to_bits(),
        want.log_det.to_bits(),
        "{context}: log_det"
    );
}

/// Acceptance criterion: served lists are bitwise identical across frontend
/// vs direct `rank_batch`, `PerWorker` vs `Sharded` cache mode, and pool
/// widths 1/2/4 — cold and pre-warmed.
#[test]
fn frontend_cache_mode_and_width_equivalence() {
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 6);
    let prewarm_pairs: Vec<(usize, Vec<usize>)> = reqs
        .iter()
        .map(|r| (r.user, r.candidates.clone()))
        .collect();

    // Reference: one direct batch at width 1 with the per-worker cache.
    let mut reference = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let want = reference.rank_batch(&reqs);

    for cache_mode in [CacheMode::PerWorker, CacheMode::Sharded { shards: 4 }] {
        for threads in [1usize, 2, 4] {
            for prewarmed in [false, true] {
                let ranker = Ranker::new(
                    RankingArtifact::snapshot(&model, &kernel),
                    ServeConfig {
                        threads,
                        cache_mode,
                        ..Default::default()
                    },
                );
                let clock = ManualClock::new();
                let mut frontend = ServeFrontend::with_clock(
                    ranker,
                    FrontendConfig {
                        max_batch: 7,
                        max_wait: Duration::from_millis(2),
                        ..Default::default()
                    },
                    Box::new(clock.clone()),
                );
                if prewarmed {
                    assert_eq!(
                        frontend.prewarm(&prewarm_pairs),
                        reqs.len(),
                        "the whole plan fits the budget, so every pair warms"
                    );
                }
                // Mixed cut pattern: some batches cut by size during
                // submission, one by deadline mid-stream, the tail by
                // flush.
                let mut tickets: Vec<Ticket> = Vec::new();
                for (i, req) in reqs.iter().enumerate() {
                    tickets.push(frontend.submit(req.clone()));
                    if i == 9 {
                        clock.advance(Duration::from_millis(3));
                        frontend.pump();
                    }
                }
                frontend.flush();
                let context =
                    format!("mode {cache_mode:?} threads {threads} prewarmed {prewarmed}");
                for (ticket, want) in tickets.iter().zip(&want) {
                    let got = frontend
                        .try_take(*ticket)
                        .unwrap_or_else(|| panic!("{context}: unserved ticket {ticket:?}"));
                    assert_same(&got, want, &context);
                }
                if prewarmed {
                    let stats = frontend.ranker().cache_stats_detailed();
                    assert_eq!(
                        stats.aggregate.misses, 0,
                        "{context}: prewarmed traffic must serve its first \
                         batch with zero kernel-assembly misses"
                    );
                    assert_eq!(stats.aggregate.hits, reqs.len() as u64);
                }
            }
        }
    }
}

#[test]
fn batches_cut_by_size_deadline_and_flush() {
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 5);
    let clock = ManualClock::new();
    let mut frontend = ServeFrontend::with_clock(
        Ranker::new(
            RankingArtifact::snapshot(&model, &kernel),
            ServeConfig {
                threads: 2,
                ..Default::default()
            },
        ),
        FrontendConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(10),
            ..Default::default()
        },
        Box::new(clock.clone()),
    );

    // 4 submissions cut a full batch inline; nothing is left pending.
    for req in &reqs[..4] {
        frontend.submit(req.clone());
    }
    assert_eq!(frontend.pending_len(), 0);
    assert_eq!(frontend.stats().cuts_full, 1);

    // 2 more sit under the deadline: pump is a no-op until the clock
    // crosses max_wait, then cuts a partial deadline batch.
    frontend.submit(reqs[4].clone());
    frontend.submit(reqs[5].clone());
    clock.advance(Duration::from_millis(9));
    assert_eq!(frontend.pump(), 0);
    assert_eq!(frontend.pending_len(), 2);
    clock.advance(Duration::from_millis(1));
    assert_eq!(frontend.pump(), 2);
    assert_eq!(frontend.stats().cuts_deadline, 1);

    // Flush serves the remainder regardless of deadlines.
    frontend.submit(reqs[6].clone());
    assert_eq!(frontend.flush(), 1);
    let stats = frontend.stats();
    assert_eq!(stats.cuts_flush, 1);
    assert_eq!(stats.submitted, 7);
    assert_eq!(stats.served, 7);
    assert_eq!(stats.batches, 3);
}

#[test]
fn queue_never_grows_past_max_batch() {
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 4);
    // max_wait so large that only size cuts can fire: the queue is bounded
    // by the inline cut alone, submission never errors, and backpressure
    // is served latency rather than growth.
    let mut frontend = ServeFrontend::with_clock(
        Ranker::new(
            RankingArtifact::snapshot(&model, &kernel),
            ServeConfig {
                threads: 2,
                ..Default::default()
            },
        ),
        FrontendConfig {
            max_batch: 16,
            max_wait: Duration::from_secs(3600),
            ..Default::default()
        },
        Box::new(ManualClock::new()),
    );
    for (i, req) in reqs.iter().cycle().take(20).enumerate() {
        frontend.submit(req.clone());
        assert!(
            frontend.pending_len() < 16,
            "queue must stay under max_batch after submit {i}"
        );
    }
    // 20 submissions: one full cut at 16, 4 left pending.
    assert_eq!(frontend.stats().cuts_full, 1);
    assert_eq!(frontend.pending_len(), 4);
    assert_eq!(frontend.completed_len(), 16);
    frontend.flush();
    assert_eq!(frontend.pending_len(), 0);
    assert_eq!(frontend.stats().served, 20);
}

#[test]
fn oversized_prewarm_plan_warms_a_stable_prefix() {
    // A plan larger than the cache budget must refuse the overflow, not
    // churn the warm set: every accepted pair keeps its first-request hit.
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 4);
    let pairs: Vec<(usize, Vec<usize>)> = reqs
        .iter()
        .map(|r| (r.user, r.candidates.clone()))
        .collect();
    let mut ranker = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 2,
            // Exactly 8 dense entries of the 20-candidate pools:
            // 8 · 8·(20 + 20²) bytes.
            kernel_cache_bytes: 8 * 8 * (20 + 20 * 20),
            cache_mode: CacheMode::Sharded { shards: 1 },
            ..Default::default()
        },
    );
    let warmed = ranker.prewarm(&pairs);
    assert_eq!(
        warmed, 8,
        "only the first `capacity` pairs of the oversized plan are warmed"
    );
    // The accepted prefix serves its first request from cache.
    let mut hits = 0;
    for (user, candidates) in pairs.iter().take(8) {
        let resp = ranker.rank_one(&RankRequest::new(*user, candidates.clone(), 3));
        hits += resp.cache_hit as usize;
    }
    assert_eq!(hits, 8, "every accepted pair keeps its first-request hit");
}

#[test]
fn tickets_redeem_exactly_once_in_any_order() {
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 5);
    let mut direct = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let want = direct.rank_batch(&reqs);
    let mut frontend = ServeFrontend::new(
        Ranker::new(
            RankingArtifact::snapshot(&model, &kernel),
            ServeConfig {
                threads: 2,
                ..Default::default()
            },
        ),
        FrontendConfig {
            max_batch: 5,
            ..Default::default()
        },
    );
    let tickets: Vec<Ticket> = reqs.iter().map(|r| frontend.submit(r.clone())).collect();
    frontend.flush();
    // Claim in reverse submission order; peek first, then take, then the
    // ticket is spent.
    for (ticket, want) in tickets.iter().zip(&want).rev() {
        assert!(frontend.peek(*ticket).is_some());
        let got = frontend.try_take(*ticket).expect("served");
        assert_same(&got, want, "reverse redemption");
        assert!(frontend.peek(*ticket).is_none());
        assert!(frontend.try_take(*ticket).is_none(), "single redemption");
    }
    assert_eq!(frontend.completed_len(), 0);
}

#[test]
fn discarded_tickets_do_not_accumulate() {
    let data = data();
    let (model, kernel) = trained(&data);
    let reqs = requests(&data, 4);
    let mut frontend = ServeFrontend::with_clock(
        Ranker::new(
            RankingArtifact::snapshot(&model, &kernel),
            ServeConfig {
                threads: 2,
                ..Default::default()
            },
        ),
        FrontendConfig {
            max_batch: 8,
            max_wait: Duration::from_secs(3600),
            ..Default::default()
        },
        Box::new(ManualClock::new()),
    );
    let tickets: Vec<Ticket> = reqs[..4]
        .iter()
        .map(|r| frontend.submit(r.clone()))
        .collect();
    // Abandon one while still pending: its request is pulled from the
    // queue and never served.
    assert!(frontend.discard(tickets[1]));
    assert_eq!(frontend.pending_len(), 3);
    assert_eq!(frontend.flush(), 3);
    assert!(frontend.try_take(tickets[1]).is_none());
    // Abandon one after serving: its unclaimed response is dropped.
    assert_eq!(frontend.completed_len(), 3);
    assert!(frontend.discard(tickets[2]));
    assert_eq!(frontend.completed_len(), 2);
    assert!(frontend.try_take(tickets[2]).is_none());
    // Discard is idempotent-by-absence and take still works for the rest.
    assert!(!frontend.discard(tickets[2]));
    assert!(frontend.try_take(tickets[0]).is_some());
    assert!(frontend.try_take(tickets[3]).is_some());
    assert_eq!(frontend.completed_len(), 0);
    let stats = frontend.stats();
    assert_eq!(stats.discarded, 2);
    assert_eq!(stats.served, 3);
}

#[test]
fn prewarm_skips_invalid_and_duplicate_pairs() {
    let data = data();
    let (model, kernel) = trained(&data);
    let mut ranker = Ranker::new(
        RankingArtifact::snapshot(&model, &kernel),
        ServeConfig {
            threads: 1,
            cache_mode: CacheMode::Sharded { shards: 2 },
            ..Default::default()
        },
    );
    let warmed = ranker.prewarm(&[
        (0, vec![1, 2, 3]),
        (0, vec![1, 2, 3]), // duplicate: already warm, counted, not re-assembled
        (data.n_users() + 1, vec![1, 2]), // unknown user
        (1, vec![2, data.n_items() + 5]), // out-of-catalog item
        (1, vec![]),        // empty pool
        (2, vec![4, 4, 9]), // deduped to [4, 9] before keying
    ]);
    assert_eq!(
        warmed, 3,
        "warm-after-call pairs: first, its duplicate, and user 2"
    );
    assert_eq!(
        ranker.cache_stats_detailed().aggregate.prewarmed,
        2,
        "only two assemblies were actually performed"
    );
    // The deduplicated prewarm key matches what a duplicated request looks
    // up: first traffic is a hit.
    let resp = ranker.rank_one(&RankRequest::new(2, vec![4, 4, 9], 2));
    assert!(resp.cache_hit, "prewarmed (deduped) pair must hit");
    let (hits, misses) = ranker.cache_stats();
    assert_eq!((hits, misses), (1, 0));
}
