//! The paper's motivating scenario: a movie-recommendation service whose
//! users get locked into one genre. Trains a GCN backbone with LkP-PS on a
//! MovieLens-like preset and shows, for a genre-focused user, how the
//! recommendation list differs from a pure-relevance (SetRank) list.
//!
//! ```text
//! cargo run --release --example diverse_movies
//! ```

use lkp::prelude::*;

fn main() {
    // MovieLens-like preset at a laptop scale: 18 genres, dense feedback.
    let data = SyntheticPreset::MovieLens.generate(0.05, 11);
    println!(
        "ML-like dataset: {} users, {} movies, {} genres",
        data.n_users(),
        data.n_items(),
        data.n_categories()
    );
    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 10,
            pairs_per_epoch: 384,
            ..Default::default()
        },
    );

    let cfg = TrainConfig {
        epochs: 40,
        eval_every: 10,
        patience: 3,
        ..Default::default()
    };
    let edges = data.train_edges();

    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let mut lkp_model = Gcn::new(
        data.n_users(),
        data.n_items(),
        &edges,
        32,
        2,
        AdamConfig::default(),
        &mut rng,
    );
    Trainer::new(cfg.clone()).fit(
        &mut lkp_model,
        &mut LkpObjective::new(LkpKind::PositiveOnly, kernel),
        &data,
    );

    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let mut setrank_model = Gcn::new(
        data.n_users(),
        data.n_items(),
        &edges,
        32,
        2,
        AdamConfig::default(),
        &mut rng,
    );
    Trainer::new(cfg).fit(&mut setrank_model, &mut SetRank, &data);

    // Pick the most genre-focused user with enough history.
    let user = (0..data.n_users())
        .filter(|&u| data.user_items(u, Split::Train).len() >= 15)
        .min_by_key(|&u| data.category_coverage(data.user_items(u, Split::Train)))
        .expect("non-empty dataset");
    let trained_genres = data.category_coverage(data.user_items(user, Split::Train));
    println!("\ncase user u{user}: {trained_genres} genres in their history");

    for (name, model) in [
        ("SetRank", &setrank_model as &dyn Recommender),
        ("LkP-PS", &lkp_model),
    ] {
        let mut scores = Vec::new();
        model.score_all(user, &mut scores);
        let top =
            lkp::eval::topn::top_n_excluding(&scores, 10, |i| data.is_seen_before_test(user, i));
        let genres = data.category_coverage(&top);
        let hits = top
            .iter()
            .filter(|i| data.user_items(user, Split::Test).contains(i))
            .count();
        let rendered: Vec<String> = top
            .iter()
            .map(|&i| format!("m{i}(g{})", data.category(i)))
            .collect();
        println!(
            "{name:<8} top-10 [{genres} genres, {hits} hits]: {}",
            rendered.join(" ")
        );
    }
    println!("\nThe LkP list should span at least as many genres without losing hits.");
}
