//! Training-loop configuration: [`TrainConfig`] and the incremental-refresh
//! [`UpdateRule`].

use lkp_data::{SamplingPolicy, TargetSelection};

/// Training-loop configuration, shared by [`crate::trainer::Trainer::fit`]
/// and the incremental [`crate::trainer::Trainer::update`] pass.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Instances per optimizer step.
    pub batch_size: usize,
    /// Ground-set target cardinality `k` (objectives may override).
    pub k: usize,
    /// Ground-set negative count `n` (objectives may override).
    pub n: usize,
    /// Target construction (S vs R).
    pub mode: TargetSelection,
    /// When epoch plans are (re)sampled. The default,
    /// [`SamplingPolicy::ResampleEachEpoch`], draws fresh negatives every
    /// epoch and keeps trajectories bitwise identical to the historical
    /// inline sampler. [`SamplingPolicy::FrozenNegatives`] samples once and
    /// reuses the identical plan — same instances, same order — for the
    /// whole run, so with `spectral_tol > 0` every revisit from epoch 2
    /// onward hits the per-worker spectral cache (each instance lands on the
    /// same worker every epoch; see `TrainReport::spectral_cache`).
    /// [`SamplingPolicy::PeriodicRefresh`] resamples every `period` epochs.
    ///
    /// [`crate::trainer::Trainer::update`] ignores this field: a refresh
    /// samples its delta plan once and reuses it for every update epoch
    /// (the frozen-negatives discipline is what lets unchanged users keep
    /// their worker affinity and spectral-cache entries).
    pub sampling_policy: SamplingPolicy,
    /// Validate every this many epochs (0 disables validation entirely).
    pub eval_every: usize,
    /// Early-stopping patience: stop after this many non-improving
    /// validations (0 disables early stopping).
    pub patience: usize,
    /// Validation metric cutoff (NDCG@cutoff).
    pub eval_cutoff: usize,
    /// Worker-thread budget for the run's persistent pool, shared by batch
    /// gradient computation and validation passes (1 = fully serial;
    /// values are clamped to ≥ 1).
    ///
    /// Gradient computation and accumulation are **bitwise identical** at
    /// any value. Validation metrics are bitwise reproducible run-to-run
    /// at a fixed value, but their per-chunk merge order follows the pool
    /// width, so across *different* values they can differ in the last ulp
    /// — which near a patience boundary may shift the early-stopping epoch.
    /// Disable validation (`eval_every = 0`) where exact cross-width
    /// trajectory equality matters.
    ///
    /// Unlike `ServeConfig::threads` / `WorkerPool::new`, `0` does **not**
    /// mean host parallelism — it is clamped to 1; pass
    /// `lkp_runtime::resolve_threads(0)` to request host width explicitly.
    pub threads: usize,
    /// Quality-drift tolerance of the epoch-persistent spectral cache
    /// (∞-norm on the per-instance quality vector `q = exp(clamp(ŷ))`).
    ///
    /// `0.0` (the default) **disables the cache entirely**: every instance
    /// recomputes its eigendecomposition and training trajectories are
    /// bitwise identical to the pre-cache trainer at any thread count. With
    /// a positive tolerance, each pool worker keeps the spectra of recently
    /// seen `(user, ground set)` pairs across batches and epochs: a revisit
    /// whose `q` moved at most this much reuses the cached spectrum outright
    /// (the `O(m³)` eigen stage is skipped), and a larger drift warm-starts
    /// the solver from the cached basis. Spectra then differ from exact
    /// recomputation by `O(tol)` (skips) / solver round-off (warm starts),
    /// so trajectories are no longer bitwise pinned — validation metrics
    /// remain within tolerance of the exact run (see
    /// `crates/core/tests/spectral_cache_equivalence.rs`).
    ///
    /// Only objectives that override `Objective::compute_cached_into`
    /// (the frozen-kernel LkP criteria) consult the cache; baselines and
    /// trainable-kernel criteria are unaffected at any value.
    ///
    /// A positive tolerance additionally lets
    /// [`crate::trainer::Trainer::update`] carry cache entries *across* the
    /// fit boundary: the base run's exported spectra are adopted into the
    /// refresh pool's workers, so unchanged users skip or warm-start their
    /// eigendecompositions from the very first update epoch.
    pub spectral_tol: f64,
    /// Epochs for one incremental [`crate::trainer::Trainer::update`] pass.
    /// `0` (the default) falls back to [`TrainConfig::epochs`]. A refresh
    /// typically needs far fewer epochs than a cold fit — the model starts
    /// at the base optimum and only the delta's users moved — which is
    /// where the refresh-vs-retrain wall-time win comes from.
    pub update_epochs: usize,
    /// Parameter-update rule used by [`crate::trainer::Trainer::update`]
    /// (full fits always use [`UpdateRule::Sgd`]).
    pub update_rule: UpdateRule,
    /// Seed for instance sampling.
    pub seed: u64,
    /// Print per-epoch progress to stderr.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 64,
            k: 5,
            n: 5,
            mode: TargetSelection::Sequential,
            sampling_policy: SamplingPolicy::ResampleEachEpoch,
            eval_every: 5,
            patience: 3,
            eval_cutoff: 10,
            threads: 4,
            spectral_tol: 0.0,
            update_epochs: 0,
            update_rule: UpdateRule::Sgd,
            seed: 17,
            verbose: false,
        }
    }
}

impl TrainConfig {
    /// The effective worker-thread budget: [`TrainConfig::threads`] clamped
    /// to at least one worker. (The deprecated `train_threads` /
    /// `eval_threads` per-phase knobs this once deferred to are gone — one
    /// pool serves training, evaluation, and refresh.)
    pub fn thread_budget(&self) -> usize {
        self.threads.max(1)
    }

    /// Epochs one [`crate::trainer::Trainer::update`] pass runs:
    /// [`TrainConfig::update_epochs`] when set, else [`TrainConfig::epochs`].
    pub fn refresh_epochs(&self) -> usize {
        if self.update_epochs > 0 {
            self.update_epochs
        } else {
            self.epochs
        }
    }
}

/// How [`crate::trainer::Trainer::update`] moves the model's parameters on
/// each refreshed instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateRule {
    /// The fit loop's rule: instance gradients are accumulated through the
    /// objective (`Objective::accumulate`) in plan order and the model's
    /// optimizer applies one step per mini-batch. An update under this rule
    /// runs the *same* code path as `Trainer::fit`, so a full-delta refresh
    /// is bitwise identical to a frozen-negatives fit on the merged data.
    Sgd,
    /// A Gillenwater-style **fixed-point EM step** applied per instance:
    /// given `g = ∂loss/∂score`, the model immediately damps the instance's
    /// scores `ŷ ← ŷ − rate·g` — equivalently the multiplicative quality
    /// update `q ← q·exp(−rate·g)` that EM performs on DPP kernel
    /// parameters, keeping `q` positive by construction. No optimizer
    /// moments are consulted; `rate` is the damping factor.
    ///
    /// Models with closed-form score parameterizations override
    /// `Recommender::em_score_step` with a direct simultaneous update
    /// (e.g. matrix factorization updates `p_u` and the touched `q_i` rows
    /// in one shot); the default falls back to gradient accumulation, in
    /// which case the batch-end optimizer step still applies the move.
    /// Intended for frozen-kernel criteria — trainable-kernel (E-type)
    /// embedding gradients are not applied under this rule.
    EmStyle {
        /// Damping factor of the fixed-point step (`0.0` freezes the model).
        rate: f64,
    },
}
