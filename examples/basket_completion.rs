//! Basket completion with conditional k-DPPs.
//!
//! The related-work section of the paper cites DPP-based basket completion
//! (Warlop et al., KDD 2019). This example shows the inference-side workflow
//! this library supports out of the box:
//!
//! 1. learn a diversity kernel from co-consumption data,
//! 2. condition the quality × diversity DPP on the items already in the
//!    user's basket,
//! 3. rank completion candidates by conditional marginal probability, and
//! 4. use the dual representation to show the same machinery scaling to a
//!    catalog where the full M × M kernel would be too large.
//!
//! ```text
//! cargo run --release --example basket_completion
//! ```

use lkp::dpp::{conditional, dual::DualSpectrum};
use lkp::prelude::*;
use rand::SeedableRng;

fn main() {
    let data = SyntheticConfig {
        n_users: 250,
        n_items: 300,
        n_categories: 10,
        mean_interactions: 20.0,
        seed: 31,
        ..Default::default()
    }
    .generate();
    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 10,
            pairs_per_epoch: 256,
            ..Default::default()
        },
    );

    // A relevance model to supply the quality side of the kernel.
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        24,
        AdamConfig::default(),
        &mut rng,
    );
    Trainer::new(TrainConfig {
        epochs: 30,
        eval_every: 10,
        patience: 3,
        ..Default::default()
    })
    .fit(
        &mut model,
        &mut LkpObjective::new(LkpKind::PositiveOnly, kernel.clone()),
        &data,
    );

    // Build a 40-item candidate slate for one user and put 2 of their test
    // items "in the basket".
    let user = (0..data.n_users())
        .find(|&u| data.user_items(u, Split::Test).len() >= 4)
        .expect("a user with enough test items");
    let test = data.user_items(user, Split::Test);
    let basket_items = &test[..2];
    let mut slate: Vec<usize> = basket_items.to_vec();
    slate.extend(test[2..].iter().copied());
    let mut filler = 0usize;
    while slate.len() < 40 {
        if !data.is_observed(user, filler) && !slate.contains(&filler) {
            slate.push(filler);
        }
        filler += 1;
    }

    // Quality × diversity kernel over the slate.
    let scores = model.score_items(user, &slate);
    let k_sub = kernel
        .normalized()
        .submatrix(&slate)
        .expect("slate in range");
    let dpp = lkp::core::objective::tailored_kernel(&scores, &k_sub).expect("PSD kernel");

    // Condition on the basket (slate positions 0 and 1) and rank the rest by
    // conditional marginal.
    let basket_positions = vec![0usize, 1];
    let cond =
        conditional::condition_on_inclusion(&dpp, &basket_positions).expect("basket has mass");
    println!(
        "basket: {:?}  →  conditioned DPP over {} remaining candidates",
        basket_items,
        cond.remaining.len()
    );
    let mut ranked: Vec<(usize, f64)> = cond
        .remaining
        .iter()
        .map(|&pos| {
            let item = slate[pos];
            let p = conditional::inclusion_conditional_marginal(&dpp, &basket_positions, pos)
                .expect("marginal computable");
            (item, p)
        })
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite marginals"));
    println!("top completions (conditional inclusion marginals):");
    for (item, p) in ranked.iter().take(5) {
        let held_out = if test.contains(item) {
            "  <- held-out test item"
        } else {
            ""
        };
        println!(
            "  item {item:>4} (cat g{})  P = {p:.4}{held_out}",
            data.category(*item)
        );
    }

    // Catalog-scale: the dual representation samples a size-8 completion set
    // over the full 300-item catalog without forming the 300 × 300 kernel.
    let dual = DualSpectrum::new(&kernel, 1e-10).expect("kernel has positive rank");
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let sample = dual.sample_kdpp(8, &mut rng).expect("rank is large enough");
    let cats = data.category_coverage(&sample);
    println!(
        "\ndual-representation 8-DPP sample over the full catalog: {sample:?} ({cats} categories)"
    );
}
