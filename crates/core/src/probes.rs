//! Ranking-interpretation diagnostics (paper Fig. 4 and Section IV-B2).

use crate::objective::tailored_kernel;
use lkp_data::{Dataset, GroundSetInstance};
use lkp_dpp::{KDpp, LowRankKernel};
use lkp_models::Recommender;

/// Mean normalized k-DPP probability of k-subsets grouped by how many
/// targets they contain (paper Fig. 4).
///
/// For each instance, every size-k subset of the `k+n` ground set is
/// assigned its probability under the tailored k-DPP built from the model's
/// current scores; subsets are bucketed by `|S ∩ targets| ∈ 0..=k` and
/// probabilities averaged within buckets, then across instances. Before any
/// training the profile is flat at `1/C(k+n, k)`; as LkP learns, buckets
/// with more targets must rise.
pub fn target_count_profile<M: Recommender>(
    model: &M,
    kernel: &LowRankKernel,
    instances: &[GroundSetInstance],
) -> Vec<f64> {
    let kernel = kernel.normalized();
    let mut sums: Vec<f64> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    for inst in instances {
        let k = inst.k();
        if sums.is_empty() {
            sums = vec![0.0; k + 1];
            counts = vec![0; k + 1];
        }
        let ground = inst.ground_set();
        let scores = model.score_items(inst.user, &ground);
        let k_sub = kernel.submatrix(&ground).expect("items in range");
        let Some(l) = tailored_kernel(&scores, &k_sub) else {
            continue;
        };
        let Ok(kdpp) = KDpp::new(l, k) else {
            continue;
        };
        let Ok(all) = kdpp.all_subset_probs() else {
            continue;
        };
        for (subset, p) in all {
            let targets = subset.iter().filter(|&&i| i < k).count();
            sums[targets] += p;
            counts[targets] += 1;
        }
    }
    sums.iter()
        .zip(&counts)
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect()
}

/// Mean k-DPP probability of the *target subset* for instances whose targets
/// are category-diverse vs. category-monotonous (Section IV-B2's
/// "0.0045 vs 0.0042"-style comparison).
///
/// Returns `(diverse_mean, monotonous_mean)`; diverse = targets spanning at
/// least `diverse_threshold` categories, monotonous = at most
/// `mono_threshold`.
pub fn diverse_vs_monotonous_target_probability<M: Recommender>(
    model: &M,
    kernel: &LowRankKernel,
    data: &Dataset,
    instances: &[GroundSetInstance],
    diverse_threshold: usize,
    mono_threshold: usize,
) -> (f64, f64) {
    let kernel = kernel.normalized();
    let mut diverse = (0.0, 0usize);
    let mut mono = (0.0, 0usize);
    for inst in instances {
        let coverage = data.category_coverage(&inst.positives);
        let bucket = if coverage >= diverse_threshold {
            &mut diverse
        } else if coverage <= mono_threshold {
            &mut mono
        } else {
            continue;
        };
        let ground = inst.ground_set();
        let scores = model.score_items(inst.user, &ground);
        let k_sub = kernel.submatrix(&ground).expect("items in range");
        let Some(l) = tailored_kernel(&scores, &k_sub) else {
            continue;
        };
        let Ok(kdpp) = KDpp::new(l, inst.k()) else {
            continue;
        };
        let target: Vec<usize> = (0..inst.k()).collect();
        let Ok(p) = kdpp.prob(&target) else {
            continue;
        };
        bucket.0 += p;
        bucket.1 += 1;
    }
    (
        if diverse.1 > 0 {
            diverse.0 / diverse.1 as f64
        } else {
            f64::NAN
        },
        if mono.1 > 0 {
            mono.0 / mono.1 as f64
        } else {
            f64::NAN
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diversity::{train_diversity_kernel, DiversityKernelConfig};
    use crate::objective::{LkpKind, LkpObjective};
    use crate::trainer::{TrainConfig, Trainer};
    use lkp_data::{InstanceSampler, SyntheticConfig, TargetSelection};
    use lkp_models::MatrixFactorization;
    use lkp_nn::AdamConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Dataset, LowRankKernel, Vec<GroundSetInstance>) {
        let data = lkp_data::synthetic::generate(&SyntheticConfig {
            n_users: 40,
            n_items: 90,
            n_categories: 8,
            mean_interactions: 18.0,
            ..Default::default()
        });
        let kernel = train_diversity_kernel(
            &data,
            &DiversityKernelConfig {
                epochs: 3,
                pairs_per_epoch: 32,
                dim: 8,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(3);
        let sampler = InstanceSampler::new(3, 3, TargetSelection::Sequential);
        let mut instances = sampler.epoch_instances(&data, &mut rng);
        instances.truncate(30);
        (data, kernel, instances)
    }

    #[test]
    fn untrained_profile_is_roughly_flat_at_uniform() {
        let (data, kernel, instances) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        let model = MatrixFactorization::new(
            data.n_users(),
            data.n_items(),
            8,
            AdamConfig::default(),
            &mut rng,
        );
        let profile = target_count_profile(&model, &kernel, &instances);
        // C(6,3) = 20 subsets, uniform ≈ 0.05 per subset; untrained scores
        // are near zero so every subset is near-uniform (within 3x).
        assert_eq!(profile.len(), 4);
        for (t, &p) in profile.iter().enumerate() {
            assert!(p > 0.05 / 3.0 && p < 0.05 * 3.0, "bucket {t}: {p}");
        }
    }

    #[test]
    fn training_orders_profile_by_target_count() {
        let (data, kernel, instances) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = MatrixFactorization::new(
            data.n_users(),
            data.n_items(),
            16,
            AdamConfig {
                lr: 0.03,
                ..Default::default()
            },
            &mut rng,
        );
        let trainer = Trainer::new(TrainConfig {
            epochs: 12,
            k: 3,
            n: 3,
            eval_every: 0,
            patience: 0,
            ..Default::default()
        });
        let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel.clone());
        trainer.fit(&mut model, &mut obj, &data);
        let profile = target_count_profile(&model, &kernel, &instances);
        // The paper's Fig. 4 shape: more targets → higher probability.
        assert!(
            profile[3] > profile[0],
            "full-target bucket {} must beat zero-target bucket {}",
            profile[3],
            profile[0]
        );
        assert!(
            profile[3] > 0.05,
            "target subset not lifted: {}",
            profile[3]
        );
    }

    #[test]
    fn probability_profile_sums_consistently() {
        // Bucket means weighted by bucket sizes must reassemble ~1.0 per
        // instance (total probability over all C(6,3)=20 subsets).
        let (data, kernel, instances) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let model = MatrixFactorization::new(
            data.n_users(),
            data.n_items(),
            8,
            AdamConfig::default(),
            &mut rng,
        );
        let profile = target_count_profile(&model, &kernel, &instances);
        // Bucket sizes for k=3, n=3: C(3,t)·C(3,3−t) = 1, 9, 9, 1.
        let total: f64 = profile
            .iter()
            .zip([1.0, 9.0, 9.0, 1.0])
            .map(|(&p, w)| p * w)
            .sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "reassembled probability {total}"
        );
    }

    #[test]
    fn diverse_targets_carry_higher_probability_with_trained_kernel() {
        let (data, kernel, instances) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let model = MatrixFactorization::new(
            data.n_users(),
            data.n_items(),
            8,
            AdamConfig::default(),
            &mut rng,
        );
        let (diverse, mono) =
            diverse_vs_monotonous_target_probability(&model, &kernel, &data, &instances, 3, 2);
        if diverse.is_nan() || mono.is_nan() {
            // Sampling produced no instances in one bucket — acceptable for
            // this small probe set.
            return;
        }
        assert!(
            diverse > mono * 0.9,
            "diverse targets ({diverse}) should not be ranked below monotonous ({mono})"
        );
    }
}
