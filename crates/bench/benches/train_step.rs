//! End-to-end training cost of each criterion on MF, plus the
//! batch-parallel epoch throughput that is this workspace's first measured
//! hot path.
//!
//! Two benchmark groups:
//!
//! * `train_step_mf` — single-instance apply cost per criterion (the
//!   overhead LkP pays for set-level ranking against BPR's two dot
//!   products). Uses the allocation-free two-phase API with a persistent
//!   workspace, matching what the trainer actually runs.
//! * `train_epoch_mf` — one full LkP-NPS epoch through [`lkp_core::Trainer`]
//!   at 1 vs 4 worker threads on the default `(k=5, n=5)` shape. The ratio
//!   of the two medians is the batch-parallel speedup tracked in
//!   `BENCH_<date>.json` (acceptance floor: ≥ 3× on 4 threads).

use criterion::{criterion_group, criterion_main, Criterion};
use lkp_core::baselines::{Bpr, S2SRank, SetRank};
use lkp_core::objective::{InstanceGrad, LkpKind, LkpObjective};
use lkp_core::{train_diversity_kernel, DiversityKernelConfig, Objective, TrainConfig, Trainer};
use lkp_data::{Dataset, GroundSetInstance, SyntheticConfig, TargetSelection};
use lkp_dpp::DppWorkspace;
use lkp_models::{MatrixFactorization, Recommender};
use lkp_nn::AdamConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn dataset() -> Dataset {
    lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 80,
        n_items: 200,
        n_categories: 12,
        mean_interactions: 20.0,
        ..Default::default()
    })
}

fn model(data: &Dataset) -> MatrixFactorization {
    let mut rng = StdRng::seed_from_u64(5);
    MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        32,
        AdamConfig::default(),
        &mut rng,
    )
}

fn bench_train_step(c: &mut Criterion) {
    let data = dataset();
    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 64,
            dim: 8,
            ..Default::default()
        },
    );
    let mut model = model(&data);
    let set_inst = GroundSetInstance {
        user: 3,
        positives: vec![0, 5, 9, 14, 20],
        negatives: vec![50, 61, 72, 83, 94],
    };
    let pair_inst = GroundSetInstance {
        user: 3,
        positives: vec![0],
        negatives: vec![50],
    };
    let list_inst = GroundSetInstance {
        user: 3,
        positives: vec![0],
        negatives: vec![50, 61, 72, 83, 94],
    };

    let mut group = c.benchmark_group("train_step_mf");
    group.sample_size(40);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));

    // Steady-state two-phase path: one workspace + grad slot, reused.
    let mut ws = DppWorkspace::new();
    let mut out = InstanceGrad::default();

    let lkp_ps = LkpObjective::new(LkpKind::PositiveOnly, kernel.clone());
    group.bench_function("lkp_ps_k5", |b| {
        b.iter(|| {
            lkp_ps.compute_into(&model, black_box(set_inst.as_ref()), &mut ws, &mut out);
            lkp_ps.accumulate(&mut model, &out);
            model.step();
            out.loss
        })
    });
    let lkp_nps = LkpObjective::new(LkpKind::NegativeAware, kernel.clone());
    group.bench_function("lkp_nps_k5", |b| {
        b.iter(|| {
            lkp_nps.compute_into(&model, black_box(set_inst.as_ref()), &mut ws, &mut out);
            lkp_nps.accumulate(&mut model, &out);
            model.step();
            out.loss
        })
    });
    group.bench_function("bpr", |b| {
        let mut obj = Bpr;
        b.iter(|| {
            let loss = obj.apply(&mut model, black_box(pair_inst.as_ref()));
            model.step();
            loss
        })
    });
    group.bench_function("setrank_n5", |b| {
        let mut obj = SetRank;
        b.iter(|| {
            let loss = obj.apply(&mut model, black_box(list_inst.as_ref()));
            model.step();
            loss
        })
    });
    group.bench_function("s2srank_k5n5", |b| {
        let mut obj = S2SRank::default();
        b.iter(|| {
            let loss = obj.apply(&mut model, black_box(set_inst.as_ref()));
            model.step();
            loss
        })
    });
    group.finish();
}

fn bench_train_epoch(c: &mut Criterion) {
    let data = dataset();
    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 64,
            dim: 8,
            ..Default::default()
        },
    );

    let mut group = c.benchmark_group("train_epoch_mf");
    group.sample_size(12);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(6));

    for threads in [1usize, 4] {
        let config = TrainConfig {
            epochs: 1,
            batch_size: 256,
            k: 5,
            n: 5,
            mode: TargetSelection::Sequential,
            eval_every: 0,
            patience: 0,
            threads,
            ..Default::default()
        };
        let trainer = Trainer::new(config);
        // Fresh model per iteration: training the same model across samples
        // would drift per-instance cost, biasing the t1-vs-t4 comparison.
        // The clone (~200 KB) is <1% of an epoch's wall clock.
        let base = model(&data);
        let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel.clone());
        group.bench_function(format!("lkp_nps_epoch_t{threads}"), |b| {
            b.iter(|| {
                let mut m = base.clone();
                let report = trainer.fit(&mut m, &mut obj, black_box(&data));
                report.history.last().map(|h| h.mean_loss).unwrap_or(0.0)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_train_step, bench_train_epoch);
criterion_main!(benches);
