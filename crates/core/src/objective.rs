//! The LkP objectives (paper Eq. 7 and Eq. 10) and the objective trait all
//! criteria implement.

use crate::{KERNEL_JITTER, SCORE_CLAMP};
use lkp_data::GroundSetInstance;
use lkp_dpp::{grad, DppKernel, KDpp, LowRankKernel};
use lkp_linalg::Matrix;
use lkp_models::{ItemEmbeddings, Recommender};

/// A per-instance training criterion.
///
/// `apply` consumes one ground-set instance: it must compute the loss (to be
/// *minimized*), push `∂loss/∂score` into the model via
/// [`Recommender::accumulate_score_grads`] (and, for embedding-aware
/// objectives, into item embeddings), and return the loss value. The trainer
/// batches `apply` calls between optimizer steps.
pub trait Objective<M: Recommender> {
    /// Applies one instance, returning its loss.
    fn apply(&mut self, model: &mut M, instance: &GroundSetInstance) -> f64;

    /// The `(k, n)` ground-set shape this criterion trains on, given the
    /// experiment's configured shape. Pointwise/pairwise baselines override
    /// this (BPR wants `(1, 1)` regardless of the experiment's `k`).
    fn instance_shape(&self, k: usize, n: usize) -> (usize, usize) {
        (k, n)
    }

    /// Short name for logs and table rows.
    fn name(&self) -> &'static str;
}

/// Which of the two LkP formulations to optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LkpKind {
    /// Eq. 7 — maximize `log P_k(S⁺)` (inclusion of the target subset).
    PositiveOnly,
    /// Eq. 10 — maximize `log P_k(S⁺) + log(1 − P_k(S⁻))` (inclusion of the
    /// target subset and exclusion of the all-negative subset; needs n = k).
    NegativeAware,
}

/// The LkP criterion with the **pre-learned** diversity kernel (paper
/// default). Holds a shared low-rank `K`; per instance it assembles
/// `L = Diag(q)·K_ground·Diag(q)` with `q = exp(ŷ)` and differentiates the
/// tailored k-DPP log-probability back into the model scores.
pub struct LkpObjective {
    kind: LkpKind,
    kernel: LowRankKernel,
}

impl LkpObjective {
    /// Creates the objective. The kernel is row-normalized on entry so its
    /// diagonal is exactly 1 (pure-diversity factor; quality lives in `q`).
    pub fn new(kind: LkpKind, kernel: LowRankKernel) -> Self {
        LkpObjective { kind, kernel: kernel.normalized() }
    }

    /// Borrow the diversity kernel.
    pub fn kernel(&self) -> &LowRankKernel {
        &self.kernel
    }

    /// The LkP formulation in use.
    pub fn kind(&self) -> LkpKind {
        self.kind
    }
}

impl<M: Recommender> Objective<M> for LkpObjective {
    fn apply(&mut self, model: &mut M, instance: &GroundSetInstance) -> f64 {
        let ground = instance.ground_set();
        let scores = model.score_items(instance.user, &ground);
        let k_sub = self.kernel.submatrix(&ground).expect("ground items in kernel range");
        match lkp_core_apply(self.kind, &scores, &k_sub, instance.k()) {
            Some((loss, dscores, _)) => {
                model.accumulate_score_grads(instance.user, &ground, &dscores);
                loss
            }
            None => 0.0,
        }
    }

    fn name(&self) -> &'static str {
        match self.kind {
            LkpKind::PositiveOnly => "LkP-PS",
            LkpKind::NegativeAware => "LkP-NPS",
        }
    }
}

/// The `E`-type LkP criterion: the diversity factor is an RBF kernel over
/// the model's *trainable* item embeddings, so the gradient additionally
/// flows into the embeddings through the kernel entries (the paper's PSE /
/// NPSE variants).
pub struct LkpRbfObjective {
    kind: LkpKind,
    /// RBF bandwidth σ.
    pub sigma: f64,
}

impl LkpRbfObjective {
    /// Creates the E-type objective with bandwidth `sigma`.
    pub fn new(kind: LkpKind, sigma: f64) -> Self {
        assert!(sigma > 0.0);
        LkpRbfObjective { kind, sigma }
    }
}

impl<M: Recommender + ItemEmbeddings> Objective<M> for LkpRbfObjective {
    fn apply(&mut self, model: &mut M, instance: &GroundSetInstance) -> f64 {
        let ground = instance.ground_set();
        let m = ground.len();
        let scores = model.score_items(instance.user, &ground);
        // Assemble the RBF diversity kernel from current item embeddings.
        let dim = model.item_dim();
        let mut feats = Matrix::zeros(m, dim);
        for (row, &item) in ground.iter().enumerate() {
            feats.row_mut(row).copy_from_slice(model.item_embedding(item));
        }
        let k_sub = lkp_dpp::lowrank::rbf_kernel(&feats, self.sigma);
        match lkp_core_apply(self.kind, &scores, &k_sub, instance.k()) {
            Some((loss, dscores, g_l)) => {
                model.accumulate_score_grads(instance.user, &ground, &dscores);
                // Chain ∂loss/∂L into K entries, then into embeddings:
                // ∂K_ij/∂e_i = K_ij (e_j − e_i) / σ².
                let q = quality(&scores);
                // g_l is already ∂loss/∂L, so dk is ∂loss/∂K.
                let dk = grad::chain_to_diversity(&g_l, &q);
                let sigma2 = self.sigma * self.sigma;
                for i in 0..m {
                    let mut de = vec![0.0; dim];
                    for j in 0..m {
                        if i == j {
                            continue;
                        }
                        let coeff = (dk[(i, j)] + dk[(j, i)]) * k_sub[(i, j)] / sigma2;
                        if coeff == 0.0 {
                            continue;
                        }
                        for (d, slot) in de.iter_mut().enumerate() {
                            *slot += coeff * (feats[(j, d)] - feats[(i, d)]);
                        }
                    }
                    model.accumulate_item_embedding_grad(ground[i], &de);
                }
                loss
            }
            None => 0.0,
        }
    }

    fn name(&self) -> &'static str {
        match self.kind {
            LkpKind::PositiveOnly => "LkP-PSE",
            LkpKind::NegativeAware => "LkP-NPSE",
        }
    }
}

/// Quality vector `q_i = exp(clamp(ŷ_i))` — the positive relevance factor of
/// the kernel decomposition (paper Eq. 13). Public so that diagnostics and
/// case studies can assemble the same kernels the objectives train with.
pub fn quality(scores: &[f64]) -> Vec<f64> {
    scores.iter().map(|&s| s.clamp(-SCORE_CLAMP, SCORE_CLAMP).exp()).collect()
}

/// Test-only re-export of the objective core, so external property tests can
/// exercise the raw `(loss, ∂loss/∂scores, ∂loss/∂L)` computation without a
/// model in the loop.
#[doc(hidden)]
pub fn lkp_core_apply_for_tests(
    kind: LkpKind,
    scores: &[f64],
    k_sub: &Matrix,
    k: usize,
) -> Option<(f64, Vec<f64>, Matrix)> {
    lkp_core_apply(kind, scores, k_sub, k)
}

/// Shared core of both LkP objectives.
///
/// Builds the tailored k-DPP over the instance's ground set and returns
/// `(loss, ∂loss/∂scores, ∂loss/∂L)`; `None` when the kernel degenerates
/// numerically (the instance is skipped, which is rare and logged upstream
/// as a zero-loss instance).
pub(crate) fn lkp_core_apply(
    kind: LkpKind,
    scores: &[f64],
    k_sub: &Matrix,
    k: usize,
) -> Option<(f64, Vec<f64>, Matrix)> {
    let m = scores.len();
    debug_assert!(k <= m);
    let q = quality(scores);
    let mut k_j = k_sub.clone();
    for i in 0..m {
        k_j[(i, i)] += KERNEL_JITTER;
    }
    let kernel = DppKernel::from_quality_diversity(&q, &k_j).ok()?;
    let kdpp = KDpp::new(kernel, k).ok()?;
    let target: Vec<usize> = (0..k).collect();
    let log_p_pos = kdpp.log_prob(&target).ok()?;
    if !log_p_pos.is_finite() {
        return None;
    }
    // ∂loss/∂L starts as −∇log P(S⁺).
    let mut g_loss = grad::grad_log_prob(&kdpp, &target).ok()?;
    g_loss.scale(-1.0);
    let mut loss = -log_p_pos;

    if kind == LkpKind::NegativeAware {
        // Exclusion of the all-negative subset (requires n = k so that S⁻ is
        // a valid size-k subset — the paper sets n = k for NPS).
        debug_assert_eq!(m, 2 * k, "NPS requires n = k");
        let negative: Vec<usize> = (k..m).collect();
        let log_p_neg = kdpp.log_prob(&negative).ok()?;
        let p_neg = log_p_neg.exp().clamp(0.0, 1.0 - 1e-9);
        loss += -(1.0 - p_neg).ln();
        // d/dL −log(1−P) = P/(1−P) · ∇log P(S⁻).
        let g_neg = grad::grad_log_prob(&kdpp, &negative).ok()?;
        let w = p_neg / (1.0 - p_neg);
        g_loss.add_scaled(w, &g_neg).expect("same shape");
    }

    // Chain into scores: ∂loss/∂s_i = (∂loss/∂q_i)·q_i (since q = exp(s)).
    let dq = grad::chain_to_quality(&g_loss, &q, &k_j);
    let dscores: Vec<f64> = dq.iter().zip(&q).map(|(&dqi, &qi)| dqi * qi).collect();
    if dscores.iter().any(|d| !d.is_finite()) || !loss.is_finite() {
        return None;
    }
    Some((loss, dscores, g_loss))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkp_nn::AdamConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn kernel(n_items: usize, dim: usize) -> LowRankKernel {
        let v = Matrix::from_fn(n_items, dim, |r, c| {
            (((r * 13 + c * 7) % 11) as f64) * 0.2 - 1.0
        });
        LowRankKernel::new(v).normalized()
    }

    fn mf(n_users: usize, n_items: usize) -> lkp_models::MatrixFactorization {
        let mut rng = StdRng::seed_from_u64(3);
        lkp_models::MatrixFactorization::new(
            n_users,
            n_items,
            8,
            AdamConfig { lr: 0.05, weight_decay: 0.0, ..Default::default() },
            &mut rng,
        )
    }

    fn instance() -> GroundSetInstance {
        GroundSetInstance { user: 0, positives: vec![0, 1, 2], negatives: vec![5, 6, 7] }
    }

    #[test]
    fn core_apply_loss_is_negative_log_prob() {
        let scores = vec![0.5, 0.2, -0.1, 0.0, -0.3, 0.4];
        let ksub = kernel(6, 4).full_matrix();
        let (loss, _, _) = lkp_core_apply(LkpKind::PositiveOnly, &scores, &ksub, 3).unwrap();
        // Recompute directly.
        let q = quality(&scores);
        let mut kj = ksub.clone();
        for i in 0..6 {
            kj[(i, i)] += KERNEL_JITTER;
        }
        let kdpp = KDpp::new(DppKernel::from_quality_diversity(&q, &kj).unwrap(), 3).unwrap();
        let expected = -kdpp.log_prob(&[0, 1, 2]).unwrap();
        assert!((loss - expected).abs() < 1e-10);
    }

    #[test]
    fn score_gradients_match_finite_difference_ps() {
        score_grad_check(LkpKind::PositiveOnly);
    }

    #[test]
    fn score_gradients_match_finite_difference_nps() {
        score_grad_check(LkpKind::NegativeAware);
    }

    fn score_grad_check(kind: LkpKind) {
        let scores = vec![0.4, -0.2, 0.1, 0.3, -0.5, 0.0];
        let ksub = kernel(6, 4).full_matrix();
        let (_, dscores, _) = lkp_core_apply(kind, &scores, &ksub, 3).unwrap();
        let h = 1e-6;
        for i in 0..6 {
            let mut plus = scores.clone();
            plus[i] += h;
            let mut minus = scores.clone();
            minus[i] -= h;
            let lp = lkp_core_apply(kind, &plus, &ksub, 3).unwrap().0;
            let lm = lkp_core_apply(kind, &minus, &ksub, 3).unwrap().0;
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - dscores[i]).abs() < 1e-5,
                "{kind:?} dim {i}: fd {fd} vs analytic {}",
                dscores[i]
            );
        }
    }

    #[test]
    fn raising_positive_scores_lowers_the_loss() {
        // The gradient on positives should be negative (descending the loss
        // raises their scores) on average, and positive on negatives.
        let scores = vec![0.0; 6];
        let ksub = kernel(6, 4).full_matrix();
        for kind in [LkpKind::PositiveOnly, LkpKind::NegativeAware] {
            let (_, ds, _) = lkp_core_apply(kind, &scores, &ksub, 3).unwrap();
            let pos_mean: f64 = ds[..3].iter().sum::<f64>() / 3.0;
            let neg_mean: f64 = ds[3..].iter().sum::<f64>() / 3.0;
            assert!(pos_mean < 0.0, "{kind:?}: positives gradient {pos_mean}");
            assert!(neg_mean > 0.0, "{kind:?}: negatives gradient {neg_mean}");
        }
    }

    #[test]
    fn training_lifts_targets_above_negatives() {
        let mut model = mf(2, 10);
        let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel(10, 4));
        let inst = instance();
        for _ in 0..200 {
            obj.apply(&mut model, &inst);
            model.step();
        }
        let ground = inst.ground_set();
        let s = model.score_items(0, &ground);
        let pos_min = s[..3].iter().cloned().fold(f64::INFINITY, f64::min);
        let neg_max = s[3..].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            pos_min > neg_max,
            "positives {:?} should dominate negatives {:?}",
            &s[..3],
            &s[3..]
        );
    }

    #[test]
    fn nps_loss_exceeds_ps_loss_for_same_state() {
        // NPS adds a non-negative exclusion term.
        let scores = vec![0.2, -0.1, 0.4, 0.0, 0.1, -0.2];
        let ksub = kernel(6, 4).full_matrix();
        let ps = lkp_core_apply(LkpKind::PositiveOnly, &scores, &ksub, 3).unwrap().0;
        let nps = lkp_core_apply(LkpKind::NegativeAware, &scores, &ksub, 3).unwrap().0;
        assert!(nps >= ps);
    }

    #[test]
    fn rbf_objective_embedding_gradients_match_finite_difference() {
        // End-to-end check through the MF model: perturb an item embedding
        // entry, the loss change must match the accumulated gradient.
        let model = mf(2, 10);
        let inst = instance();
        let sigma = 0.9;
        let kind = LkpKind::PositiveOnly;
        let ground = inst.ground_set();

        let loss_fn = |m: &lkp_models::MatrixFactorization| {
            let scores = m.score_items(inst.user, &ground);
            let dim = m.item_dim();
            let mut feats = Matrix::zeros(ground.len(), dim);
            for (row, &item) in ground.iter().enumerate() {
                feats.row_mut(row).copy_from_slice(m.item_embedding(item));
            }
            let ksub = lkp_dpp::lowrank::rbf_kernel(&feats, sigma);
            lkp_core_apply(kind, &scores, &ksub, inst.k()).unwrap().0
        };

        // Collect analytic embedding gradient via a spy: we re-derive it the
        // same way the objective does, then compare with FD on the loss.
        let scores = model.score_items(inst.user, &ground);
        let dim = model.item_dim();
        let mut feats = Matrix::zeros(ground.len(), dim);
        for (row, &item) in ground.iter().enumerate() {
            feats.row_mut(row).copy_from_slice(model.item_embedding(item));
        }
        let ksub = lkp_dpp::lowrank::rbf_kernel(&feats, sigma);
        let (_, _, g_l) = lkp_core_apply(kind, &scores, &ksub, inst.k()).unwrap();
        let q = quality(&scores);
        let dk = grad::chain_to_diversity(&g_l, &q);
        let sigma2 = sigma * sigma;
        // Analytic gradient for ground item index 1 (item id ground[1]).
        let i = 1;
        let mut de = vec![0.0; dim];
        for j in 0..ground.len() {
            if i == j {
                continue;
            }
            let coeff = (dk[(i, j)] + dk[(j, i)]) * ksub[(i, j)] / sigma2;
            for (d, slot) in de.iter_mut().enumerate() {
                *slot += coeff * (feats[(j, d)] - feats[(i, d)]);
            }
        }
        // Finite difference on embedding dims 0..3. The *score* also depends
        // on the item embedding (s = <p,q>), so FD sees both paths; subtract
        // the score path to isolate the kernel path.
        let h = 1e-6;
        let mut bumped = mf(2, 10); // same seed → identical weights
        for d in 0..3 {
            let item = ground[i];
            let orig = bumped.item_embedding(item)[d];
            // Kernel-path analytic = total FD − score-path analytic.
            // Score path: dloss/ds_i · p_u[d].
            let (_, dscores, _) = lkp_core_apply(kind, &scores, &ksub, inst.k()).unwrap();
            let p_u = bumped.user_embedding(inst.user).to_vec();
            let score_path = dscores[i] * p_u[d];
            set_item_dim(&mut bumped, item, d, orig + h);
            let lp = loss_fn(&bumped);
            set_item_dim(&mut bumped, item, d, orig - h);
            let lm = loss_fn(&bumped);
            set_item_dim(&mut bumped, item, d, orig);
            let fd = (lp - lm) / (2.0 * h);
            let kernel_path_fd = fd - score_path;
            assert!(
                (kernel_path_fd - de[d]).abs() < 1e-5,
                "dim {d}: kernel-path fd {kernel_path_fd} vs analytic {}",
                de[d]
            );
        }
    }

    fn set_item_dim(m: &mut lkp_models::MatrixFactorization, item: usize, d: usize, v: f64) {
        // Test helper: poke an item embedding entry through the public
        // accumulate-and-step API would distort Adam state, so use the
        // ItemEmbeddings read + a targeted write via unsafe-free cloning.
        let mut row = m.item_embedding(item).to_vec();
        row[d] = v;
        // Re-write by constructing gradient that moves the value exactly is
        // brittle; instead use the matrix accessor exposed for tests.
        m.set_item_embedding_for_tests(item, &row);
    }
}
