//! L-ensemble kernels and the quality × diversity decomposition.

use crate::{DppError, Result};
use lkp_linalg::{eigen::SymmetricEigen, Matrix};

/// A (symmetric PSD) L-ensemble kernel over a finite ground set.
///
/// Wraps a dense matrix and caches its eigendecomposition on demand. The
/// kernel defines an unnormalized measure `det(L_S)` over subsets `S`; the
/// standard DPP and the k-DPP differ only in how that measure is normalized.
#[derive(Debug, Clone)]
pub struct DppKernel {
    l: Matrix,
}

impl DppKernel {
    /// Wraps a symmetric kernel matrix.
    ///
    /// The matrix is symmetrized (absorbing round-off asymmetry); PSD-ness is
    /// the caller's responsibility — use [`DppKernel::from_quality_diversity`]
    /// or [`DppKernel::project_psd`] to guarantee it.
    pub fn new(mut l: Matrix) -> Result<Self> {
        if !l.is_square() {
            return Err(DppError::Linalg(lkp_linalg::LinalgError::NotSquare {
                rows: l.rows(),
                cols: l.cols(),
            }));
        }
        l.symmetrize();
        Ok(DppKernel { l })
    }

    /// Builds the paper's quality × diversity kernel (Eq. 2):
    /// `L = Diag(q) · K · Diag(q)`, i.e. `L_ij = q_i · K_ij · q_j`.
    ///
    /// `q` holds per-item positive quality scores, `k_matrix` the (PSD)
    /// diversity kernel restricted to the same items. PSD-ness of `K`
    /// transfers to `L` because the map is a congruence.
    pub fn from_quality_diversity(q: &[f64], k_matrix: &Matrix) -> Result<Self> {
        if k_matrix.rows() != q.len() || k_matrix.cols() != q.len() {
            return Err(DppError::Linalg(
                lkp_linalg::LinalgError::DimensionMismatch {
                    expected: (q.len(), q.len()),
                    got: k_matrix.shape(),
                },
            ));
        }
        let n = q.len();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                l[(i, j)] = q[i] * k_matrix[(i, j)] * q[j];
            }
        }
        DppKernel::new(l)
    }

    /// Ground-set size.
    pub fn size(&self) -> usize {
        self.l.rows()
    }

    /// Borrow the kernel matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.l
    }

    /// Consume, returning the kernel matrix.
    pub fn into_matrix(self) -> Matrix {
        self.l
    }

    /// Eigendecomposition of the kernel (values ascending).
    pub fn eigen(&self) -> Result<SymmetricEigen> {
        Ok(SymmetricEigen::new(&self.l)?)
    }

    /// Eigenvalues clamped at zero (PSD projection of the spectrum).
    pub fn nonneg_eigenvalues(&self) -> Result<Vec<f64>> {
        Ok(self.eigen()?.clamped_nonnegative_values())
    }

    /// `log det(L_S)` for a subset `S` of the ground set.
    ///
    /// Computed via Cholesky with a graceful fallback to LU's
    /// `sign_log_det` when round-off makes the submatrix indefinite; returns
    /// `-inf` for numerically singular submatrices.
    pub fn log_det_subset(&self, subset: &[usize]) -> Result<f64> {
        for &i in subset {
            if i >= self.size() {
                return Err(DppError::IndexOutOfBounds {
                    index: i,
                    ground_size: self.size(),
                });
            }
        }
        if subset.is_empty() {
            return Ok(0.0);
        }
        let sub = self.l.principal_submatrix(subset)?;
        match lkp_linalg::Cholesky::new(&sub) {
            Ok(ch) => Ok(ch.log_det()),
            Err(_) => {
                let lu = lkp_linalg::Lu::new(&sub)?;
                let (sign, log_det) = lu.sign_log_det();
                if sign > 0.0 {
                    Ok(log_det)
                } else {
                    // det <= 0 can only be round-off for a PSD kernel; treat
                    // as numerically singular.
                    Ok(f64::NEG_INFINITY)
                }
            }
        }
    }

    /// `det(L_S)` for a subset (clamped at 0 for numerically negative values).
    pub fn det_subset(&self, subset: &[usize]) -> Result<f64> {
        Ok(self.log_det_subset(subset)?.exp())
    }

    /// Projects the kernel onto the PSD cone by clamping negative eigenvalues
    /// to zero. Returns the projected kernel.
    pub fn project_psd(&self) -> Result<DppKernel> {
        let eig = self.eigen()?;
        let projected = eig.reconstruct_with(|_, l| l.max(0.0));
        DppKernel::new(projected)
    }

    /// Standard-DPP log-probability `log P(S) = log det(L_S) − log det(L+I)`
    /// (paper Eq. 1). Provided for the standard-DPP ablation; LkP itself uses
    /// the k-DPP normalization.
    pub fn standard_dpp_log_prob(&self, subset: &[usize]) -> Result<f64> {
        let num = self.log_det_subset(subset)?;
        let lambda = self.nonneg_eigenvalues()?;
        // det(L + I) = Π (λ_i + 1).
        let log_norm: f64 = lambda.iter().map(|&l| (l + 1.0).ln()).sum();
        Ok(num - log_norm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate_subsets;

    fn example_psd(n: usize) -> Matrix {
        // VᵀV + 0.1 I with deterministic V.
        let v = Matrix::from_fn(n + 1, n, |r, c| ((r * 3 + c * 7) % 5) as f64 * 0.3 - 0.5);
        let mut g = v.gram();
        for i in 0..n {
            g[(i, i)] += 0.1;
        }
        g
    }

    #[test]
    fn quality_diversity_matches_manual_assembly() {
        let k = example_psd(3);
        let q = [1.0, 2.0, 0.5];
        let kern = DppKernel::from_quality_diversity(&q, &k).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expected = q[i] * k[(i, j)] * q[j];
                assert!((kern.matrix()[(i, j)] - expected).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn quality_diversity_preserves_psd() {
        let k = example_psd(4);
        let q = [0.3, 5.0, 1.7, 0.01];
        let kern = DppKernel::from_quality_diversity(&q, &k).unwrap();
        for l in kern.nonneg_eigenvalues().unwrap() {
            assert!(l >= 0.0);
        }
        // True eigenvalues (unclamped) should already be ≥ -1e-10.
        let eig = kern.eigen().unwrap();
        for &l in &eig.values {
            assert!(l > -1e-10);
        }
    }

    #[test]
    fn log_det_subset_matches_direct_determinant() {
        let kern = DppKernel::new(example_psd(4)).unwrap();
        for subset in enumerate_subsets(4, 2) {
            let sub = kern.matrix().principal_submatrix(&subset).unwrap();
            let expected = lkp_linalg::lu::det(&sub).unwrap();
            let got = kern.det_subset(&subset).unwrap();
            assert!((got - expected).abs() < 1e-10, "{subset:?}");
        }
    }

    #[test]
    fn empty_subset_has_unit_determinant() {
        let kern = DppKernel::new(example_psd(3)).unwrap();
        assert_eq!(kern.log_det_subset(&[]).unwrap(), 0.0);
        assert_eq!(kern.det_subset(&[]).unwrap(), 1.0);
    }

    #[test]
    fn standard_dpp_probabilities_sum_to_one() {
        let kern = DppKernel::new(example_psd(4)).unwrap();
        let mut total = 0.0;
        for k in 0..=4 {
            for subset in enumerate_subsets(4, k) {
                total += kern.standard_dpp_log_prob(&subset).unwrap().exp();
            }
        }
        assert!((total - 1.0).abs() < 1e-8, "total probability {total}");
    }

    #[test]
    fn out_of_bounds_subset_rejected() {
        let kern = DppKernel::new(example_psd(3)).unwrap();
        assert!(matches!(
            kern.log_det_subset(&[0, 7]),
            Err(DppError::IndexOutOfBounds { index: 7, .. })
        ));
    }

    #[test]
    fn project_psd_clamps_negative_spectrum() {
        // Indefinite symmetric matrix.
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        let kern = DppKernel::new(m).unwrap();
        let proj = kern.project_psd().unwrap();
        let eig = proj.eigen().unwrap();
        for &l in &eig.values {
            assert!(l > -1e-12);
        }
        // Positive part of the spectrum is preserved.
        assert!((eig.values[1] - 3.0).abs() < 1e-10);
    }
}
