//! The epoch/mini-batch training loop shared by every criterion, plus the
//! incremental **refresh pipeline** that warm-starts it from a finished run.
//!
//! Instance generation lives in `lkp-data`'s planning layer: an
//! [`EpochPlanner`] produces each epoch's [`lkp_data::EpochPlan`] — one
//! contiguous flat arena of ground sets — under a [`SamplingPolicy`]
//! ([`lkp_data::SamplingPolicy::ResampleEachEpoch`] reproduces the historical inline
//! sampler draw-for-draw; [`lkp_data::SamplingPolicy::FrozenNegatives`] /
//! [`lkp_data::SamplingPolicy::PeriodicRefresh`] reuse plans across epochs so
//! revisited ground sets hit the per-worker spectral cache). The plan's
//! [`lkp_data::BatchSchedule`] cuts it into optimizer batches and buckets
//! each batch by ground-set size, so every pool dispatch run is uniform-`m`
//! and the objective's batched entry point can solve a run's eigenproblems
//! back-to-back.
//!
//! Mini-batches are **batch-parallel** on a persistent
//! [`lkp_runtime::WorkerPool`] created once per run: within a batch,
//! instance gradients are computed concurrently by the pool's workers, each
//! owning its [`DppWorkspace`] (plus batch arena or spectral cache) in pool
//! worker state **across batches** (the model is only *read* during this
//! phase). The computed gradients are then accumulated into the model
//! serially, in plan order, before the optimizer step — so the result is
//! **bitwise identical** at any thread count, including the serial
//! `threads = 1` path (which spawns no thread at all). Validation passes
//! run on the *same* pool, so one run spawns its workers exactly once.
//!
//! The module splits along that pipeline:
//!
//! * [`config`] — [`TrainConfig`] and the refresh [`UpdateRule`].
//! * [`fit`] — [`Trainer::fit`] / [`Trainer::fit_with_callback`] (the cold
//!   path) and [`Trainer::fit_state`], which additionally exports the
//!   [`TrainedState`] warm-start token.
//! * [`update`] — [`Trainer::update`]: the delta-fit pass. It merges a
//!   [`lkp_data::DatasetDelta`], freezes unchanged users' plan records
//!   (preserving their worker affinity), adopts the base run's
//!   spectral-cache entries into the new pool, and runs the *same* epoch
//!   engine for a handful of refresh epochs.
//! * [`report`] — [`TrainReport`], [`TrainedState`], [`RefreshReport`].
//!
//! Both `fit` and `update` drive one private epoch engine ([`run_epochs`])
//! over a [`PlanSource`]; `fit` is exactly the full-plan, resampling,
//! SGD-rule special case, and stays bitwise identical to the historical
//! single-file trainer.

mod config;
mod fit;
mod report;
mod update;

pub use config::{TrainConfig, UpdateRule};
pub use report::{EpochStat, RefreshReport, TrainReport, TrainedState};

use crate::objective::{InstanceGrad, Objective};
use lkp_data::{
    BatchSchedule, Dataset, EpochPlan, EpochPlanner, InstanceBlock, PlanStats, ScheduledBatch,
};
use lkp_dpp::{DppBatchArena, DppWorkspace, SpectralCache, SpectralCacheStats, SpectralSnapshot};
use lkp_models::Recommender;
use lkp_runtime::WorkerPool;
use rand::rngs::StdRng;

/// The training loop.
#[derive(Debug, Clone)]
pub struct Trainer {
    /// Loop configuration.
    pub config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }
}

/// Where the epoch engine gets each epoch's plan from.
///
/// `fit` resolves plans through an [`EpochPlanner`] (fresh or reused per the
/// sampling policy); `update` serves one fixed refresh plan for every epoch.
pub(crate) trait PlanSource {
    /// The plan and batch schedule for 1-based `epoch`.
    fn plan_for_epoch(
        &mut self,
        data: &Dataset,
        epoch: usize,
        rng: &mut StdRng,
    ) -> (&EpochPlan, &BatchSchedule);

    /// Plan counters for the run report.
    fn stats(&self) -> PlanStats;
}

/// [`PlanSource`] over a policy-driven [`EpochPlanner`] (the fit path).
pub(crate) struct PlannerSource {
    pub(crate) planner: EpochPlanner,
}

impl PlanSource for PlannerSource {
    fn plan_for_epoch(
        &mut self,
        data: &Dataset,
        epoch: usize,
        rng: &mut StdRng,
    ) -> (&EpochPlan, &BatchSchedule) {
        self.planner.plan_for_epoch(data, epoch, rng)
    }

    fn stats(&self) -> PlanStats {
        self.planner.stats()
    }
}

/// [`PlanSource`] serving one pre-built plan for every epoch (the refresh
/// path: delta plans are sampled once and frozen, like
/// [`lkp_data::SamplingPolicy::FrozenNegatives`]).
pub(crate) struct FixedSource {
    plan: EpochPlan,
    schedule: BatchSchedule,
    resamples: u64,
    reuses: u64,
}

impl FixedSource {
    pub(crate) fn new(plan: EpochPlan, schedule: BatchSchedule) -> Self {
        FixedSource {
            plan,
            schedule,
            resamples: 0,
            reuses: 0,
        }
    }

    /// Hands the plan back once the run is over (it becomes the next
    /// [`TrainedState`]'s frozen plan).
    pub(crate) fn into_plan(self) -> EpochPlan {
        self.plan
    }
}

impl PlanSource for FixedSource {
    fn plan_for_epoch(
        &mut self,
        _data: &Dataset,
        _epoch: usize,
        _rng: &mut StdRng,
    ) -> (&EpochPlan, &BatchSchedule) {
        if self.resamples == 0 {
            self.resamples = 1;
        } else {
            self.reuses += 1;
        }
        (&self.plan, &self.schedule)
    }

    fn stats(&self) -> PlanStats {
        PlanStats {
            resamples: self.resamples,
            reuses: self.reuses,
            instances: self.plan.len(),
            distinct_sizes: self.plan.distinct_sizes(),
        }
    }
}

/// What [`run_epochs`] hands back to its caller.
pub(crate) struct EngineRun {
    pub(crate) epochs_run: usize,
    pub(crate) best_epoch: usize,
    /// Best validation NDCG (0.0 if validation never ran).
    pub(crate) best_val: f64,
    pub(crate) history: Vec<EpochStat>,
}

/// The shared epoch engine: plans, computes, accumulates, steps, validates,
/// early-stops, and restores the best checkpoint. `fit` and `update` differ
/// only in the [`PlanSource`], the epoch count, and the [`UpdateRule`] —
/// with [`UpdateRule::Sgd`] this is instruction-for-instruction the
/// historical fit loop, so existing trajectories stay bitwise pinned.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_epochs<M, O, P, F>(
    cfg: &TrainConfig,
    epochs: usize,
    rule: UpdateRule,
    model: &mut M,
    objective: &mut O,
    data: &Dataset,
    source: &mut P,
    pool: &mut WorkerPool,
    rng: &mut StdRng,
    callback: &mut F,
) -> EngineRun
where
    M: Recommender + Clone + Sync,
    O: Objective<M>,
    P: PlanSource,
    F: FnMut(usize, &M),
{
    let batch_size = cfg.batch_size.max(1);
    let mut history = Vec::with_capacity(epochs);
    let mut best_val = f64::NEG_INFINITY;
    let mut best_epoch = 0usize;
    let mut bad_evals = 0usize;
    let mut epochs_run = 0usize;
    let mut best_state: Option<M> = None;
    let mut grads: Vec<InstanceGrad> = (0..batch_size).map(|_| InstanceGrad::default()).collect();

    callback(0, model);

    for epoch in 1..=epochs {
        epochs_run = epoch;
        model.begin_epoch();
        // The plan: fresh or reused per the source. Reused plans keep
        // instance identity *and order*, so batch and chunk boundaries —
        // and therefore each instance's worker, whose spectral cache is
        // per-worker state — repeat exactly.
        let (plan, schedule) = source.plan_for_epoch(data, epoch, rng);

        let mut loss_sum = 0.0;
        let mut count = 0usize;
        let objective_ref: &O = objective;
        for batch in schedule.iter() {
            compute_batch(
                objective_ref,
                &*model,
                plan,
                batch,
                pool,
                &mut grads,
                cfg.spectral_tol,
            );
            // Serial accumulation in *plan order* (`slot_of` maps each
            // plan position to its dispatch slot) keeps results
            // independent of both the thread count and the size
            // bucketing (bit-for-bit).
            for &slot in batch.slot_of {
                let grad = &grads[slot];
                loss_sum += grad.loss;
                count += 1;
                match rule {
                    UpdateRule::Sgd => objective_ref.accumulate(model, grad),
                    UpdateRule::EmStyle { rate } => {
                        if !grad.dscores.is_empty() {
                            model.em_score_step(grad.user, &grad.items, &grad.dscores, rate);
                        }
                    }
                }
            }
            model.step();
        }
        let mean_loss = if count > 0 {
            loss_sum / count as f64
        } else {
            0.0
        };

        let mut val_ndcg = None;
        if cfg.eval_every > 0 && epoch % cfg.eval_every == 0 {
            let metrics = lkp_eval::evaluate_with_pool(
                model,
                data,
                &[cfg.eval_cutoff],
                lkp_data::Split::Validation,
                pool,
            );
            let ndcg = metrics.at(cfg.eval_cutoff).map(|m| m.ndcg).unwrap_or(0.0);
            val_ndcg = Some(ndcg);
            if ndcg > best_val + 1e-6 {
                best_val = ndcg;
                best_epoch = epoch;
                bad_evals = 0;
                best_state = Some(model.clone());
            } else {
                bad_evals += 1;
            }
        }
        if cfg.verbose {
            match val_ndcg {
                Some(v) => eprintln!(
                    "[{}] epoch {epoch:>3}: loss {mean_loss:.4}  val-ndcg@{} {v:.4}",
                    objective.name(),
                    cfg.eval_cutoff
                ),
                None => eprintln!(
                    "[{}] epoch {epoch:>3}: loss {mean_loss:.4}",
                    objective.name()
                ),
            }
        }
        history.push(EpochStat {
            epoch,
            mean_loss,
            val_ndcg,
        });
        callback(epoch, model);

        if cfg.patience > 0 && bad_evals >= cfg.patience {
            break;
        }
    }

    if let Some(best) = best_state {
        *model = best;
    }

    EngineRun {
        epochs_run,
        best_epoch,
        best_val: if best_val.is_finite() { best_val } else { 0.0 },
        history,
    }
}

/// Sums the spectral-cache counters held in the pool workers' state. Runs
/// one (cheap) extra dispatch; skipped entirely when the cache was disabled.
pub(crate) fn collect_spectral_stats(
    pool: &mut WorkerPool,
    spectral_tol: f64,
) -> SpectralCacheStats {
    if spectral_tol <= 0.0 {
        return SpectralCacheStats::default();
    }
    let totals = std::sync::Mutex::new(SpectralCacheStats::default());
    pool.run(|_, state| {
        if let Some(cache) = state.get_mut::<SpectralCache>() {
            totals.lock().expect("stats lock").merge(&cache.stats());
        }
    });
    totals.into_inner().expect("stats lock")
}

/// Exports every pool worker's spectral-cache entries into one sorted,
/// deduplicated [`SpectralSnapshot`] — the cache-carry half of a
/// [`TrainedState`]. Empty when the cache was disabled.
pub(crate) fn export_spectral_snapshot(
    pool: &mut WorkerPool,
    spectral_tol: f64,
) -> SpectralSnapshot {
    if spectral_tol <= 0.0 {
        return SpectralSnapshot::default();
    }
    let merged = std::sync::Mutex::new(Vec::new());
    pool.run(|_, state| {
        if let Some(cache) = state.get_mut::<SpectralCache>() {
            merged
                .lock()
                .expect("snapshot lock")
                .extend(cache.export_entries());
        }
    });
    SpectralSnapshot::from_entries(merged.into_inner().expect("snapshot lock"))
}

/// Computes one scheduled batch's instance gradients into
/// `grads[..batch.len()]`, indexed by **dispatch slot**.
///
/// The batch's dispatch list (record indices, bucketed so uniform-size runs
/// are contiguous) is cut into contiguous chunks, one pool worker per chunk;
/// the bounded dispatch additionally splits each worker's chunk at size
/// boundaries, so every `f` call sees a uniform-`m` run. Each worker reuses
/// the state held in its persistent pool slots and writes the matching
/// disjoint slice of gradient slots. The model is shared immutably —
/// `compute_*` never mutates it. Because every gradient slot is computed
/// from its instance alone, slot *values* are independent of the pool width
/// and of the bucketing — only wall-clock changes.
///
/// With `spectral_tol = 0` (the default) each uniform run goes through
/// [`Objective::compute_batch_into`], whose LkP override stages the run into
/// the worker's persistent [`DppBatchArena`] and solves its eigenproblems
/// back-to-back — bitwise identical to the historical per-instance loop.
/// With `spectral_tol > 0` each worker instead threads its persistent
/// [`SpectralCache`] through [`Objective::compute_cached_into`], so
/// revisited ground sets reuse or warm-start their eigendecompositions
/// across batches *and epochs* (worker state outlives both; frozen plans
/// pin each instance to one worker, making every revisit a cache hit).
pub(crate) fn compute_batch<M, O>(
    objective: &O,
    model: &M,
    plan: &EpochPlan,
    batch: ScheduledBatch<'_>,
    pool: &mut WorkerPool,
    grads: &mut [InstanceGrad],
    spectral_tol: f64,
) where
    M: Recommender + Sync,
    O: Objective<M>,
{
    let grads = &mut grads[..batch.len()];
    if spectral_tol > 0.0 {
        pool.zip_chunks(batch.dispatch, grads, |_, idx_chunk, grad_chunk, state| {
            let (ws, cache) = state.get_or_default_pair::<DppWorkspace, SpectralCache>();
            cache.set_tol(spectral_tol);
            for (&idx, out) in idx_chunk.iter().zip(grad_chunk.iter_mut()) {
                objective.compute_cached_into(model, plan.instance(idx), ws, cache, out);
            }
        });
    } else {
        pool.zip_chunks_bounded(
            batch.dispatch,
            grads,
            batch.bounds,
            |_, idx_chunk, grad_chunk, state| {
                let (ws, arena) = state.get_or_default_pair::<DppWorkspace, DppBatchArena>();
                objective.compute_batch_into(
                    model,
                    InstanceBlock::new(plan, idx_chunk),
                    ws,
                    arena,
                    grad_chunk,
                );
            },
        );
    }
}
