//! `lkp-serve` — the batched top-N serving layer.
//!
//! Training (the paper's contribution) produces a relevance model and a
//! diversity kernel; the *product* is a ranker. This crate turns a trained
//! [`lkp_models::Recommender`] into one:
//!
//! 1. [`RankingArtifact`] snapshots the model + diversity kernel into an
//!    immutable serving artifact (scores and kernel entries can never drift
//!    under a concurrent trainer).
//! 2. [`Ranker`] drives batched [`RankRequest`]s through the shared
//!    [`lkp_runtime::WorkerPool`]: per request it assembles the user's
//!    tailored low-rank kernel `L_C = Diag(q)·K_C·Diag(q) + ε·I` over the
//!    candidate set (exactly the kernel the LkP criterion trained against —
//!    same quality map `q = exp(clamp(ŷ))`, same L-space jitter) and runs
//!    incremental-Cholesky greedy MAP ([`lkp_dpp::greedy_map_with`]) to pick
//!    the top-N list — `O(|C|·N²)` per request after the `O(|C|²·d)` kernel
//!    assembly.
//! 3. The dominant assembly is amortized by a **bounded per-user kernel
//!    cache** in one of two backends ([`ServeConfig::cache_mode`]): private
//!    per-worker caches (default, lock-free) or one cache for the whole
//!    pool, sharded by user hash — the latter removes both the `threads×`
//!    memory multiplier and the per-worker cold-start tax, and can be
//!    pre-warmed with popular pairs via [`Ranker::prewarm`].
//! 4. [`ServeFrontend`] accepts individually submitted requests into a
//!    bounded queue and cuts micro-batches by size/deadline
//!    ([`FrontendConfig`]), so callers that see one request at a time still
//!    ride the batched pool path.
//! 5. The production shell hardens that core: [`FrontendDriver`] pumps the
//!    frontend from its own thread; admission control sheds overload with
//!    a typed [`SubmitError`]; per-request SLOs expire stale work at cut
//!    time; a degraded mode caps the DPP rerank head under pressure; panics
//!    and numerical failures poison only their own ticket
//!    ([`RankOutcome`]); and [`ServeFrontend::swap_artifact`] replaces the
//!    model between cuts with the new generation's cache prewarmed
//!    ([`StagedSwap`]).
//!
//! Serving results are **identical at any pool width, in either cache
//! mode, and through the frontend**: requests are independent, both cache
//! backends store bit-exact copies of what a cache miss would recompute,
//! and greedy MAP breaks ties by candidate order.

mod artifact;
mod cache;
mod frontend;
mod ranker;

pub use artifact::RankingArtifact;
pub use cache::{CacheStats, ShardStats};
pub use frontend::{
    Clock, DriverClient, FrontendConfig, FrontendDriver, FrontendStats, LatencyHistogram,
    ManualClock, MonotonicClock, ServeFrontend, SubmitError, SwapRecord, SwapReport, Ticket,
    LATENCY_BUCKETS,
};
pub use ranker::{RankOutcome, RankRequest, RankResponse, Ranker, ServeWorkspace, StagedSwap};

/// Which backend amortizes the `O(|C|²·d)` candidate-kernel assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Every pool worker owns a private cache (lock-free; the default).
    /// A user's kernel is re-assembled once per worker that serves them,
    /// and each worker's cache is bounded by
    /// [`ServeConfig::kernel_cache_capacity`] on its own.
    #[default]
    PerWorker,
    /// One cache for the whole pool, sharded `shards` ways by user hash
    /// with one lock per shard. [`ServeConfig::kernel_cache_capacity`] is
    /// the *total* entry budget (each shard holds at most
    /// `ceil(capacity / shards)`); a user's kernel is assembled once per
    /// process and hit from any worker. `shards` is clamped to ≥ 1; size it
    /// at or above the pool width so concurrent lookups rarely contend on
    /// one lock.
    Sharded {
        /// Number of hash shards (= independent locks).
        shards: usize,
    },
}

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads of the ranker's pool (0 = host parallelism).
    pub threads: usize,
    /// L-space jitter `ε` added to the assembled candidate kernel. Defaults
    /// to the training-side [`lkp_core::KERNEL_JITTER`] so served lists rank
    /// by exactly the distribution the model was trained under.
    pub jitter: f64,
    /// Score clamp applied before `exp` in the quality map (defaults to the
    /// training-side [`lkp_core::SCORE_CLAMP`]).
    pub score_clamp: f64,
    /// Kernel-cache capacity in users (0 disables caching).
    ///
    /// The bound is an entry count, not a byte budget: each entry holds a
    /// `|C| × |C|` f64 matrix, i.e. `|C|²·8` bytes (~80 KB at `|C| = 100`,
    /// ~2 MB at `|C| = 500`). In [`CacheMode::PerWorker`] every pool worker
    /// owns its own cache of this capacity — size it as
    /// `capacity ≈ budget_bytes / (threads · |C|² · 8)`; in
    /// [`CacheMode::Sharded`] this is the total budget across shards —
    /// `capacity ≈ budget_bytes / (|C|² · 8)`, a `threads×` larger resident
    /// set for the same bytes. The default (256 entries ≈ 20 MB/worker at
    /// `|C| = 100`) favors small candidate pools.
    pub kernel_cache_capacity: usize,
    /// Kernel-cache backend (default [`CacheMode::PerWorker`], the exact
    /// pre-sharding behavior).
    pub cache_mode: CacheMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 0,
            jitter: lkp_core::KERNEL_JITTER,
            score_clamp: lkp_core::SCORE_CLAMP,
            kernel_cache_capacity: 256,
            cache_mode: CacheMode::PerWorker,
        }
    }
}
