//! The four analyzers. Each operates on the lexer's code channel — comments
//! and literal contents are already gone — plus the shared per-line
//! structure in [`crate::FileView`].

pub mod determinism;
pub mod hotpath_alloc;
pub mod lock_scope;
pub mod unsafe_audit;

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte offsets of every occurrence of `token` in `line` that sits on
/// identifier boundaries: not preceded by an identifier character, and (for
/// tokens ending in one) not followed by one — so `unsafe_code` never
/// matches `unsafe`, and `recompute` never matches `compute`.
pub(crate) fn token_matches(line: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = line[from..].find(token) {
        let at = from + rel;
        let before_ok = at == 0 || !line[..at].chars().next_back().is_some_and(is_ident);
        let end = at + token.len();
        let token_ends_ident = token.chars().next_back().is_some_and(is_ident);
        let after_ok = !token_ends_ident || !line[end..].chars().next().is_some_and(is_ident);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + token.len();
    }
    out
}

/// Like [`token_matches`] but only the *leading* boundary is enforced: the
/// match may continue into a longer identifier. This is the L2 semantics —
/// `compute` catches `compute_into`, while `recompute` still does not match.
pub(crate) fn prefix_matches(line: &str, prefix: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = line[from..].find(prefix) {
        let at = from + rel;
        let before_ok = at == 0 || !line[..at].chars().next_back().is_some_and(is_ident);
        if before_ok {
            out.push(at);
        }
        from = at + prefix.len();
    }
    out
}

/// Whether the first non-whitespace character at or after `from` is in
/// `expected`.
pub(crate) fn next_nonspace_in(line: &str, from: usize, expected: &[char]) -> bool {
    line[from..]
        .chars()
        .find(|c| !c.is_whitespace())
        .is_some_and(|c| expected.contains(&c))
}

/// The identifier ending immediately before byte `at` (used to pull a guard
/// binding's name out of `let mut guard = …`).
pub(crate) fn ident_before(line: &str, at: usize) -> Option<&str> {
    let head = &line[..at];
    let trimmed = head.trim_end();
    let start = trimmed
        .char_indices()
        .rev()
        .take_while(|&(_, c)| is_ident(c))
        .last()
        .map(|(i, _)| i)?;
    let ident = &trimmed[start..];
    ident
        .chars()
        .next()
        .is_some_and(|c| !c.is_numeric())
        .then_some(ident)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_boundaries_hold() {
        assert_eq!(token_matches("unsafe { }", "unsafe"), vec![0]);
        assert!(token_matches("unsafe_code", "unsafe").is_empty());
        assert!(token_matches("AssertUnwindSafe", "unsafe").is_empty());
        assert!(token_matches("recompute(", "compute").is_empty());
        assert!(token_matches("a.compute_into(b)", "compute").is_empty());
        assert_eq!(token_matches("vec![0.0; n]", "vec!"), vec![0]);
        assert!(token_matches("my_vec!", "vec!").is_empty());
    }

    #[test]
    fn prefix_matches_extend_into_longer_idents() {
        assert_eq!(prefix_matches("a.compute_into(b)", "compute"), vec![2]);
        assert_eq!(prefix_matches("compute(", "compute"), vec![0]);
        assert!(prefix_matches("recompute_warm(", "compute").is_empty());
    }

    #[test]
    fn ident_before_finds_bindings() {
        assert_eq!(ident_before("let mut guard = ", 14), Some("guard"));
        assert_eq!(ident_before("let x=", 5), Some("x"));
        assert_eq!(ident_before("   ", 3), None);
    }
}
