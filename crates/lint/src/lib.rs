//! `lkp-lint` — in-repo static analysis for the invariants the compiler
//! cannot see.
//!
//! Every layer of this workspace rests on conventions that are enforced
//! nowhere in the type system: the training/serving hot paths must stay
//! allocation-free, kernel assembly must never run under a shard lock, the
//! bitwise-equivalence gates assume no wall-clock reads or hash-order
//! iteration inside the deterministic core, and every `unsafe` block needs a
//! written justification. This crate turns those conventions into
//! machine-checked rules:
//!
//! | lint            | rule |
//! |-----------------|------|
//! | `hotpath-alloc` | no allocating calls (`Vec::new`, `vec![`, `to_vec`, `collect`, `Box::new`, `format!`, `String::from`) in the configured hot-path modules |
//! | `lock-scope`    | no expensive-work calls (`assemble*`, `compute*`, `eigen*`, `gram*`, `matmul*`, `prewarm*`) inside the lexical scope of a live `.lock()` guard |
//! | `determinism`   | no `Instant::now` / `SystemTime`, and no `HashMap`/`HashSet` iteration, inside the bitwise-pinned core |
//! | `unsafe-audit`  | every `unsafe` keyword is immediately preceded by a `// SAFETY:` comment |
//!
//! Findings print as `file:line: [lint] message` and are suppressible only
//! by an inline `// lint:allow(<name>): <reason>` on the offending line or
//! the line directly above — the reason is mandatory and checked (a bare
//! allow is itself a finding, and suppresses nothing).
//!
//! The engine is a lexical pass, not a parser (see [`lexer`]): comments and
//! literal contents are stripped before any rule matches, so documentation
//! can mention `Vec::new()` freely. Known limits are documented per lint in
//! `docs/LINTS.md` — the rules are tuned to this repo's idioms (rustfmt
//! formatting, guard bindings named on the `.lock()` line).

pub mod config;
pub mod lexer;
pub mod lints;
pub mod suppress;

pub use config::LintConfig;

use lexer::{brace_depths, scan, test_regions, Scanned};
use std::path::Path;

/// Which rule produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// L1: allocating call in a hot-path module.
    HotpathAlloc,
    /// L2: expensive work inside a live lock-guard scope.
    LockScope,
    /// L3: clock read or hash-order iteration in the deterministic core.
    Determinism,
    /// L4: `unsafe` without an immediately preceding `// SAFETY:` comment.
    UnsafeAudit,
    /// A malformed suppression: missing reason or unknown lint name.
    BadAllow,
}

impl Lint {
    /// The name used in output and in `lint:allow(<name>)`.
    pub fn name(self) -> &'static str {
        match self {
            Lint::HotpathAlloc => "hotpath-alloc",
            Lint::LockScope => "lock-scope",
            Lint::Determinism => "determinism",
            Lint::UnsafeAudit => "unsafe-audit",
            Lint::BadAllow => "bad-allow",
        }
    }

    /// Parses a `lint:allow` name. [`Lint::BadAllow`] is not suppressible
    /// and therefore not parseable.
    pub fn from_allow_name(name: &str) -> Option<Self> {
        match name {
            "hotpath-alloc" => Some(Lint::HotpathAlloc),
            "lock-scope" => Some(Lint::LockScope),
            "determinism" => Some(Lint::Determinism),
            "unsafe-audit" => Some(Lint::UnsafeAudit),
            _ => None,
        }
    }
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One violation, anchored to a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// The rule that fired.
    pub lint: Lint,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.lint, self.message
        )
    }
}

/// A scanned file plus the derived structure every analyzer shares.
pub struct FileView<'a> {
    /// Workspace-relative path with `/` separators.
    pub rel_path: &'a str,
    /// Code/comment channels from the lexer.
    pub scanned: &'a Scanned,
    /// Brace depth at the start of each line.
    pub depth_start: &'a [usize],
    /// Lines inside `#[cfg(test)]` / `#[test]` items.
    pub in_test: &'a [bool],
}

/// Lints one file's source text. `rel_path` decides which rules apply (see
/// [`LintConfig`]); suppressions are resolved here, so the returned findings
/// are final.
pub fn lint_source(rel_path: &str, source: &str, config: &LintConfig) -> Vec<Finding> {
    let scanned = scan(source);
    let depth_start = brace_depths(&scanned.code);
    let in_test = test_regions(&scanned.code);
    let view = FileView {
        rel_path,
        scanned: &scanned,
        depth_start: &depth_start,
        in_test: &in_test,
    };

    let mut findings = Vec::new();
    if config.is_hot_path(rel_path) {
        lints::hotpath_alloc::check(&view, config, &mut findings);
    }
    if config.is_lock_scope(rel_path) {
        lints::lock_scope::check(&view, config, &mut findings);
    }
    if config.is_deterministic_core(rel_path) {
        lints::determinism::check(&view, config, &mut findings);
    }
    lints::unsafe_audit::check(&view, &mut findings);

    suppress::apply(rel_path, &scanned, &mut findings);
    findings.sort_by(|a, b| (a.line, a.lint.name()).cmp(&(b.line, b.lint.name())));
    findings
}

/// Walks the workspace tree at `root` and lints every `.rs` file under the
/// configured source roots. Returns `(findings, files_scanned)`.
pub fn lint_tree(root: &Path, config: &LintConfig) -> (Vec<Finding>, usize) {
    let mut files = Vec::new();
    for dir in &config.source_roots {
        collect_rs_files(&root.join(dir), root, config, &mut files);
    }
    files.sort();
    let mut findings = Vec::new();
    let scanned = files.len();
    for rel in files {
        let source = match std::fs::read_to_string(root.join(&rel)) {
            Ok(s) => s,
            Err(_) => continue,
        };
        findings.extend(lint_source(&rel, &source, config));
    }
    (findings, scanned)
}

fn collect_rs_files(dir: &Path, root: &Path, config: &LintConfig, out: &mut Vec<String>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if config.excluded_dirs.iter().any(|d| d == name.as_ref()) {
                continue;
            }
            collect_rs_files(&path, root, config, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_names_round_trip() {
        for lint in [
            Lint::HotpathAlloc,
            Lint::LockScope,
            Lint::Determinism,
            Lint::UnsafeAudit,
        ] {
            assert_eq!(Lint::from_allow_name(lint.name()), Some(lint));
        }
        assert_eq!(Lint::from_allow_name("bad-allow"), None);
        assert_eq!(Lint::from_allow_name("nonsense"), None);
    }

    #[test]
    fn findings_format_as_file_line_lint() {
        let f = Finding {
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            lint: Lint::HotpathAlloc,
            message: "allocating call `Vec::new`".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/x/src/lib.rs:7: [hotpath-alloc] allocating call `Vec::new`"
        );
    }
}
