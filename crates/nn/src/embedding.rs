//! Embedding tables with sparse gradient accumulation.

use crate::optim::{AdamConfig, AdamState};
use lkp_linalg::Matrix;
use rand::Rng;

/// A `rows × dim` table of trainable embeddings with sparse Adam updates.
///
/// Gradients are *accumulated* against rows (a batch may touch a row several
/// times) and applied once per [`EmbeddingTable::step`], which visits only
/// the touched rows.
#[derive(Debug, Clone)]
pub struct EmbeddingTable {
    weights: Matrix,
    adam: AdamState,
    /// Accumulated gradients for touched rows, keyed by row id.
    pending: Vec<(usize, Vec<f64>)>,
    /// Retired gradient buffers recycled by `accumulate_*` — keeps the
    /// accumulate/step cycle allocation-free at steady state.
    free: Vec<Vec<f64>>,
}

impl EmbeddingTable {
    /// Creates a table initialized with `N(0, std²)` entries.
    pub fn new<R: Rng + ?Sized>(
        rows: usize,
        dim: usize,
        std: f64,
        config: AdamConfig,
        rng: &mut R,
    ) -> Self {
        EmbeddingTable {
            weights: crate::init::normal_matrix(rows, dim, std, rng),
            adam: AdamState::new(rows, dim, config),
            pending: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Number of rows (users or items).
    pub fn rows(&self) -> usize {
        self.weights.rows()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.weights.cols()
    }

    /// Borrow a row.
    pub fn row(&self, i: usize) -> &[f64] {
        self.weights.row(i)
    }

    /// Borrow the whole table (e.g. for GCN propagation).
    pub fn matrix(&self) -> &Matrix {
        &self.weights
    }

    /// Mutably borrow the whole table (for tests and custom initialization).
    pub fn matrix_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// Accumulates `grad` against row `i` (gradient of a loss to *minimize*).
    pub fn accumulate_grad(&mut self, i: usize, grad: &[f64]) {
        self.accumulate_scaled_grad(i, 1.0, grad);
    }

    /// Accumulates `scale · grad` against row `i` without the caller having
    /// to materialize the scaled row — the allocation-free hot-path form.
    pub fn accumulate_scaled_grad(&mut self, i: usize, scale: f64, grad: &[f64]) {
        debug_assert_eq!(grad.len(), self.dim());
        if let Some((_, g)) = self.pending.iter_mut().find(|(row, _)| *row == i) {
            for (a, &b) in g.iter_mut().zip(grad) {
                *a += scale * b;
            }
        } else {
            let mut buf = self.free.pop().unwrap_or_default();
            buf.clear();
            buf.extend(grad.iter().map(|&b| scale * b));
            self.pending.push((i, buf));
        }
    }

    /// Applies all accumulated gradients with sparse Adam and clears them.
    pub fn step(&mut self) {
        let mut pending = std::mem::take(&mut self.pending);
        for (row, grad) in &pending {
            self.adam.step_row(&mut self.weights, *row, grad);
        }
        // Recycle the gradient buffers instead of dropping them.
        for (_, buf) in pending.drain(..) {
            self.free.push(buf);
        }
        self.pending = pending;
    }

    /// Discards accumulated gradients without applying them.
    pub fn zero_grad(&mut self) {
        for (_, buf) in self.pending.drain(..) {
            self.free.push(buf);
        }
    }

    /// Number of rows with pending gradients.
    pub fn pending_rows(&self) -> usize {
        self.pending.len()
    }

    /// Adjusts the learning rate (all subsequent steps).
    pub fn set_lr(&mut self, lr: f64) {
        self.adam.config_mut().lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> EmbeddingTable {
        let mut rng = StdRng::seed_from_u64(7);
        EmbeddingTable::new(
            5,
            3,
            0.1,
            AdamConfig {
                lr: 0.05,
                weight_decay: 0.0,
                ..Default::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn accumulation_merges_repeated_rows() {
        let mut t = table();
        t.accumulate_grad(2, &[1.0, 0.0, 0.0]);
        t.accumulate_grad(2, &[1.0, 2.0, 0.0]);
        assert_eq!(t.pending_rows(), 1);
        let before = t.row(2).to_vec();
        t.step();
        let after = t.row(2).to_vec();
        assert!(after[0] < before[0], "descended along dim 0");
        assert!(after[1] < before[1], "descended along dim 1");
        assert_eq!(t.pending_rows(), 0, "pending cleared after step");
    }

    #[test]
    fn untouched_rows_do_not_move() {
        let mut t = table();
        let before = t.row(4).to_vec();
        t.accumulate_grad(0, &[0.5, 0.5, 0.5]);
        t.step();
        assert_eq!(t.row(4), before.as_slice());
    }

    #[test]
    fn zero_grad_discards() {
        let mut t = table();
        let before = t.row(1).to_vec();
        t.accumulate_grad(1, &[9.0, 9.0, 9.0]);
        t.zero_grad();
        t.step();
        assert_eq!(t.row(1), before.as_slice());
    }

    #[test]
    fn repeated_steps_descend_dot_product_loss() {
        // Minimize -<e_0, target> so e_0 should align with target.
        let mut t = table();
        let target = [1.0, -1.0, 0.5];
        for _ in 0..300 {
            let grad: Vec<f64> = target.iter().map(|&x| -x).collect();
            t.accumulate_grad(0, &grad);
            t.step();
        }
        let dot: f64 = t.row(0).iter().zip(&target).map(|(a, b)| a * b).sum();
        assert!(dot > 1.0, "alignment {dot}");
    }
}
