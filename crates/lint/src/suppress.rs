//! Inline suppressions: `// lint:allow(<name>): <reason>`.
//!
//! A suppression silences findings of lint `<name>` on its own line and on
//! the first code line below it — intervening comment-only lines are skipped,
//! so a multi-line justification ending directly above the offending code
//! covers it, as does a trailing comment. The reason is mandatory and checked:
//! a bare `lint:allow(<name>)` — or one naming an unknown lint — suppresses
//! nothing and is itself a [`Lint::BadAllow`] finding, so suppressions can
//! never silently rot into unexplained exemptions.

use crate::lexer::Scanned;
use crate::{Finding, Lint};

const MARKER: &str = "lint:allow(";

/// One parsed `lint:allow` occurrence.
#[derive(Debug)]
pub struct Allow {
    /// The lint named inside the parentheses (may be unknown).
    pub name: String,
    /// Whether a non-empty `: <reason>` followed.
    pub has_reason: bool,
}

/// Parses every `lint:allow(...)` in one line's comment text.
pub fn parse_allows(comment: &str) -> Vec<Allow> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find(MARKER) {
        rest = &rest[at + MARKER.len()..];
        let Some(close) = rest.find(')') else { break };
        let name = rest[..close].trim().to_string();
        rest = &rest[close + 1..];
        // Documentation placeholders (`lint:allow(<name>)`, `lint:allow(…)`)
        // are not attempted suppressions; a *typo'd* real name still is.
        if !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            continue;
        }
        let after = rest.trim_start();
        let has_reason = after
            .strip_prefix(':')
            .is_some_and(|r| !r.trim_start_matches([' ', ':']).trim().is_empty());
        out.push(Allow { name, has_reason });
    }
    out
}

/// Resolves suppressions for one file: drops findings covered by a valid
/// allow on their line or the line above, and appends a [`Lint::BadAllow`]
/// finding for every malformed allow.
pub fn apply(rel_path: &str, scanned: &Scanned, findings: &mut Vec<Finding>) {
    // allowed[i] = lints validly suppressed for source line i+1.
    let mut allowed: Vec<Vec<Lint>> = vec![Vec::new(); scanned.len()];
    for (idx, comment) in scanned.comments.iter().enumerate() {
        if !comment.contains(MARKER) {
            continue;
        }
        for allow in parse_allows(comment) {
            let lint = Lint::from_allow_name(&allow.name);
            match (lint, allow.has_reason) {
                (Some(lint), true) => {
                    // Covers this line, any comment-only continuation lines,
                    // and the first code line after the comment block.
                    allowed[idx].push(lint);
                    let mut j = idx + 1;
                    while j < allowed.len() {
                        allowed[j].push(lint);
                        let comment_only = scanned.code[j].trim().is_empty()
                            && !scanned.comments[j].trim().is_empty();
                        if !comment_only {
                            break;
                        }
                        j += 1;
                    }
                }
                (None, _) => findings.push(Finding {
                    path: rel_path.to_string(),
                    line: idx + 1,
                    lint: Lint::BadAllow,
                    message: format!(
                        "lint:allow names unknown lint `{}` (known: hotpath-alloc, \
                         lock-scope, determinism, unsafe-audit)",
                        allow.name
                    ),
                }),
                (Some(_), false) => findings.push(Finding {
                    path: rel_path.to_string(),
                    line: idx + 1,
                    lint: Lint::BadAllow,
                    message: format!(
                        "lint:allow({}) has no reason — write \
                         `lint:allow({}): <why this is sound>`",
                        allow.name, allow.name
                    ),
                }),
            }
        }
    }
    findings.retain(|f| {
        f.lint == Lint::BadAllow
            || f.line == 0
            || f.line > allowed.len()
            || !allowed[f.line - 1].contains(&f.lint)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_allow_with_reason() {
        let allows = parse_allows("// lint:allow(hotpath-alloc): cold constructor");
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].name, "hotpath-alloc");
        assert!(allows[0].has_reason);
    }

    #[test]
    fn bare_allow_has_no_reason() {
        let allows = parse_allows("// lint:allow(determinism)");
        assert_eq!(allows.len(), 1);
        assert!(!allows[0].has_reason);
        let allows = parse_allows("// lint:allow(determinism):   ");
        assert!(!allows[0].has_reason);
    }

    #[test]
    fn doc_placeholders_are_not_allows() {
        assert!(parse_allows("// justify with `lint:allow(<name>): <reason>`").is_empty());
        assert!(parse_allows("// e.g. `lint:allow(...)`").is_empty());
        // …but a typo'd real name is still an (invalid) attempt.
        assert_eq!(parse_allows("// lint:allow(hotpath_alloc): x").len(), 1);
    }

    #[test]
    fn multiple_allows_on_one_line() {
        let allows = parse_allows("// lint:allow(hotpath-alloc): a lint:allow(lock-scope): b");
        assert_eq!(allows.len(), 2);
        assert!(allows.iter().all(|a| a.has_reason));
    }
}
