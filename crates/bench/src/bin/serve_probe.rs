//! Serving probe: batched top-N throughput and latency of the `lkp-serve`
//! path (snapshot → per-user tailored kernel → greedy MAP on the pool).
//!
//! Prints one JSON object; `scripts/bench_snapshot.sh` appends it to the
//! `BENCH_<date>.json` trajectory snapshot. Flags:
//!
//! * `--batches N`  — timed batches per configuration (default 30)
//! * `--batch N`    — requests per batch (default 64)
//! * `--candidates N` — candidate-pool size per request (default 100)
//! * `--top N`      — list length (default 10)

use lkp_core::{train_diversity_kernel, DiversityKernelConfig};
use lkp_data::SyntheticConfig;
use lkp_models::MatrixFactorization;
use lkp_nn::AdamConfig;
use lkp_serve::{RankRequest, Ranker, RankingArtifact, ServeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn flag(name: &str, default: usize) -> usize {
    std::env::args()
        .skip_while(|a| a != name)
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let batches = flag("--batches", 30);
    let batch = flag("--batch", 64);
    let n_candidates = flag("--candidates", 100);
    let top_n = flag("--top", 10);

    let n_users = 500;
    let n_items = 2000;
    let data = lkp_data::synthetic::generate(&SyntheticConfig {
        n_users,
        n_items,
        n_categories: 16,
        mean_interactions: 20.0,
        ..Default::default()
    });
    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 64,
            dim: 12,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(9);
    let model = MatrixFactorization::new(n_users, n_items, 32, AdamConfig::default(), &mut rng);

    // Request stream: users round-robin, per-user stable candidate pools
    // (the cache-friendly shape), deterministic.
    let reqs: Vec<RankRequest> = (0..batch)
        .map(|i| {
            let user = (i * 131) % n_users;
            let candidates: Vec<usize> = (0..n_candidates)
                .map(|j| (user * 37 + j * 101 + 13) % n_items)
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            RankRequest::new(user, candidates, top_n)
        })
        .collect();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut results = Vec::new();
    for threads in [1usize, 4] {
        let artifact = RankingArtifact::snapshot(&model, &kernel);
        let mut ranker = Ranker::new(
            artifact,
            ServeConfig {
                threads,
                ..Default::default()
            },
        );
        let mut out = Vec::new();
        // Warm-up: populates per-worker caches and buffers.
        for _ in 0..3 {
            ranker.rank_batch_into(&reqs, &mut out);
        }
        let t = Instant::now();
        for _ in 0..batches {
            ranker.rank_batch_into(&reqs, &mut out);
        }
        let elapsed = t.elapsed().as_nanos() as f64;
        let total_requests = (batches * batch) as f64;
        let ns_per_request = elapsed / total_requests;
        let requests_per_sec = 1e9 / ns_per_request;
        let (hits, misses) = ranker.cache_stats();
        results.push((threads, ns_per_request, requests_per_sec, hits, misses));
    }

    let t1 = results[0].1;
    let t4 = results[1].1;
    println!(
        "{{\"probe\":\"serving\",\"batch\":{batch},\"candidates\":{n_candidates},\"top_n\":{top_n},\
\"ns_per_request_t1\":{:.0},\"ns_per_request_t4\":{:.0},\
\"requests_per_sec_t1\":{:.0},\"requests_per_sec_t4\":{:.0},\
\"thread_scaling\":{:.3},\"cache_hits\":{},\"cache_misses\":{},\"host_cores\":{cores}}}",
        t1,
        t4,
        results[0].2,
        results[1].2,
        t1 / t4,
        results[1].3,
        results[1].4,
    );
}
