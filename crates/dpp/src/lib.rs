//! Determinantal point processes (DPPs) and fixed-cardinality k-DPPs.
//!
//! This crate implements every DPP primitive the paper's LkP criterion rests
//! on, plus the standard inference tooling a DPP library is expected to ship:
//!
//! * [`esp`] — elementary symmetric polynomials over kernel eigenvalues,
//!   including the paper's Algorithm 1 and the leave-one-out variants needed
//!   for gradients.
//! * [`kernel`] — L-ensemble kernels, the quality × diversity decomposition
//!   (`L = Diag(q)·K·Diag(q)`, Eq. 2), and PSD hygiene.
//! * [`kdpp`] — the k-DPP distribution: normalization `Z_k = e_k(λ)` (Eq. 6),
//!   exact log-probabilities (Eq. 4), and brute-force references for tests.
//! * [`grad`] — analytic gradients of `log det(L_S)` and `log e_k(λ(L))`
//!   with respect to the kernel entries (Eq. 12).
//! * [`sampling`] — exact DPP and k-DPP sampling (Kulesza & Taskar).
//! * [`map`] — fast greedy MAP inference (Chen et al., NeurIPS 2018).
//! * [`map_dual`] — the same greedy recursion run directly on a thin row
//!   factor `B` (kernel `B·Bᵀ + ε·I` never materialized): `O(m·d·N)` serving
//!   MAP with a numerical-breakdown guard for dense fallback.
//! * [`map_merge`] — lazy-greedy merge for sharded serving: a marginal-gain
//!   ladder that re-runs the exact MAP recursion only on heap tops, bitwise
//!   identical to an unsharded greedy MAP over the same kernel.
//! * [`lowrank`] — low-rank diversity kernels `K = V·Vᵀ` with log-det
//!   gradients, used to pre-train the paper's diversity kernel (Eq. 3).
//! * [`conditional`] — DPPs conditioned on inclusion/exclusion of item sets
//!   (basket completion, out-of-stock filtering).
//! * [`dual`] — the `d × d` dual representation of low-rank kernels:
//!   catalog-scale normalization and exact k-DPP sampling without ever
//!   forming the `M × M` kernel.
//! * [`workspace`] — the allocation-free per-instance training hot path:
//!   one reusable [`DppWorkspace`] fuses kernel assembly, (dense or dual)
//!   eigendecomposition, ESP normalizer, and gradient chain per instance.
//! * [`spectral_cache`] — epoch-persistent cache of tailored-kernel
//!   spectra keyed by `(user, ground set)`: revisits within a quality-drift
//!   tolerance skip the eigen stage outright, drifted revisits warm-start
//!   the solver from the cached basis.

pub mod batch;
pub mod conditional;
pub mod dual;
pub mod esp;
pub mod grad;
pub mod kdpp;
pub mod kernel;
pub mod lowrank;
pub mod map;
pub mod map_dual;
pub mod map_merge;
pub mod sampling;
pub mod spectral_cache;
pub mod workspace;

pub use batch::{BatchSlot, DppBatchArena};
pub use dual::DualSpectrum;
pub use kdpp::KDpp;
pub use kernel::DppKernel;
pub use lowrank::LowRankKernel;
pub use map::{greedy_map_with, MapResult, MapWorkspace};
pub use map_dual::{greedy_map_dual_with, DualMapWorkspace, DUAL_BREAKDOWN_GUARD};
pub use map_merge::{conditioned_greedy_merge, MergeGuard, MergeLadderWorkspace, MergeOutcome};
pub use spectral_cache::{
    SpectralCache, SpectralCacheEntry, SpectralCacheStats, SpectralDecision, SpectralSnapshot,
};
pub use workspace::{DppWorkspace, SpectrumPath, TailoredResult};

/// Errors raised by DPP construction and inference.
#[derive(Debug, Clone, PartialEq)]
pub enum DppError {
    /// Underlying linear algebra failure (shape, convergence, ...).
    Linalg(lkp_linalg::LinalgError),
    /// Requested cardinality exceeds the ground-set size (or its rank).
    CardinalityTooLarge { k: usize, ground_size: usize },
    /// A subset index fell outside the ground set.
    IndexOutOfBounds { index: usize, ground_size: usize },
    /// The requested subset does not have the distribution's cardinality.
    WrongSubsetSize { expected: usize, got: usize },
    /// The kernel's spectrum is entirely (numerically) zero, so no k-DPP with
    /// k >= 1 exists.
    DegenerateKernel,
    /// An incremental recursion (the dual greedy MAP) lost numerical footing:
    /// a residual drifted beyond its guard or turned non-finite. The result
    /// is meaningless; callers should fall back to a dense-path computation.
    NumericalBreakdown,
}

impl From<lkp_linalg::LinalgError> for DppError {
    fn from(e: lkp_linalg::LinalgError) -> Self {
        DppError::Linalg(e)
    }
}

impl std::fmt::Display for DppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DppError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            DppError::CardinalityTooLarge { k, ground_size } => {
                write!(f, "cardinality {k} exceeds ground set size {ground_size}")
            }
            DppError::IndexOutOfBounds { index, ground_size } => {
                write!(
                    f,
                    "item index {index} out of bounds for ground set of {ground_size}"
                )
            }
            DppError::WrongSubsetSize { expected, got } => {
                write!(f, "subset has size {got}, the k-DPP requires {expected}")
            }
            DppError::DegenerateKernel => write!(f, "kernel spectrum is numerically zero"),
            DppError::NumericalBreakdown => {
                write!(f, "incremental recursion lost numerical footing")
            }
        }
    }
}

impl std::error::Error for DppError {}

/// Result alias for DPP operations.
pub type Result<T> = std::result::Result<T, DppError>;

/// Enumerates all size-`k` subsets of `0..n` in lexicographic order.
///
/// Intended for tests and tiny ground sets (the per-instance `k+n` sets of
/// the paper, where `C(10, 5) = 252`); the paper's Fig. 4 probe uses this.
pub fn enumerate_subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if k > n {
        return out;
    }
    let mut current: Vec<usize> = (0..k).collect();
    loop {
        out.push(current.clone());
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if current[i] != i + n - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        current[i] += 1;
        for j in (i + 1)..k {
            current[j] = current[j - 1] + 1;
        }
    }
}

/// Binomial coefficient `C(n, k)` as f64 (sufficient for subset counting).
pub fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut result = 1.0;
    for i in 0..k {
        result = result * (n - i) as f64 / (i + 1) as f64;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerate_subsets_counts_match_binomial() {
        for n in 0..=8 {
            for k in 0..=n {
                let subsets = enumerate_subsets(n, k);
                assert_eq!(subsets.len() as f64, binomial(n, k), "n={n} k={k}");
                // All subsets distinct and sorted.
                for s in &subsets {
                    assert!(s.windows(2).all(|w| w[0] < w[1]));
                }
            }
        }
    }

    #[test]
    fn enumerate_subsets_edge_cases() {
        assert_eq!(enumerate_subsets(3, 0), vec![Vec::<usize>::new()]);
        assert_eq!(enumerate_subsets(3, 4), Vec::<Vec<usize>>::new());
        assert_eq!(enumerate_subsets(3, 3), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn binomial_known_values() {
        assert_eq!(binomial(10, 5), 252.0);
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(4, 2), 6.0);
        assert_eq!(binomial(3, 7), 0.0);
    }
}
