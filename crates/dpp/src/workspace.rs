//! Allocation-free per-instance k-DPP workspace — the training hot path.
//!
//! The LkP criterion processes one ground-set instance as: assemble
//! `L = Diag(q)·K_T·Diag(q) + ε·I`, eigendecompose it, evaluate the ESP
//! normalizer `Z_k = e_k(λ)` (paper Eq. 6) and its leave-one-out gradient
//! weights (Eq. 12–15), invert the target submatrix, and chain everything
//! back into per-item score gradients. The cold-path types ([`crate::KDpp`],
//! [`crate::grad`]) allocate every intermediate per call; this module holds
//! all of them in one reusable [`DppWorkspace`] so a steady-state train step
//! performs **zero heap allocations**, and fuses the whole pipeline into one
//! pass per instance.
//!
//! Two execution paths produce identical results (up to eigen-solver
//! round-off):
//!
//! * **dense** — eigendecompose the `m × m` kernel directly (`O(m³)`);
//! * **dual** — when the diversity kernel is low-rank `K = V·Vᵀ` with
//!   `d < m`, eigendecompose the `d × d` dual Gram `BᵀB` of `B = Diag(q)·V_T`
//!   instead (Gartrell et al.'s dual-space trick), recover item-space
//!   eigenvectors as `v̂_j = B·w_j/√µ_j`, and complete the flat `ε`
//!   eigenspace with a projector — `O(d³ + m·d²)` for the spectrum.
//!
//! The dual path is exact because the jitter enters in **L-space**
//! (`L = Diag(q)·K_T·Diag(q) + ε·I`): adding `ε·I` shifts every eigenvalue
//! by exactly `ε` and leaves eigenvectors untouched, so the dual spectrum
//! `µ_j` maps to `λ_j = µ_j + ε` with no approximation. (A jitter applied to
//! `K_T` before the congruence — the historical formulation — has no such
//! correspondence, which is why the workspace defines the tailored kernel
//! this way.)

use crate::batch::{BatchSlot, SlotState};
use crate::esp::{self, LeaveOneOutScratch};
use crate::spectral_cache::{SpectralCache, SpectralDecision};
use lkp_linalg::{cholesky, eigen::EigenScratch, Matrix, SymmetricEigen};

/// Relative threshold below which dual eigenvalues are folded into the flat
/// `ε` eigenspace (they carry no probability mass at `f64` precision).
const DUAL_RANK_TOL: f64 = 1e-12;

/// Reusable scratch buffers for the per-instance tailored k-DPP pipeline.
///
/// Create once per worker thread and thread through every instance; all
/// buffers grow to the steady-state `(m, k, d)` shape on first use and are
/// reused afterwards.
#[derive(Debug, Clone, Default)]
pub struct DppWorkspace {
    // --- caller-staged kernel inputs ---
    /// Staging buffer for the diversity submatrix `K_T` (`m × m`); callers
    /// fill it (e.g. via [`crate::LowRankKernel::submatrix_into`]) before
    /// [`DppWorkspace::tailored_loss_grad_staged`].
    pub k_sub: Matrix,
    /// Staging buffer for the gathered low-rank factor rows `V_T` (`m × d`),
    /// or per-item feature rows for kernels assembled from embeddings.
    pub factor_rows: Matrix,
    // --- kernel assembly ---
    q: Vec<f64>,
    l: Matrix,
    // --- spectrum (dense path) ---
    eigen: SymmetricEigen,
    eig_scratch: EigenScratch,
    // --- spectrum (dual path) ---
    b: Matrix,
    dual: Matrix,
    dual_eigen: SymmetricEigen,
    item_vectors: Matrix,
    retained_idx: Vec<usize>,
    // --- shared spectral data ---
    lambda: Vec<f64>,
    scaled: Vec<f64>,
    esp_buf: Vec<f64>,
    loo: Vec<f64>,
    loo_scratch: LeaveOneOutScratch,
    // --- determinant gradients ---
    sub: Matrix,
    chol: Matrix,
    inv: Matrix,
    col: Vec<f64>,
    /// Whether `chol` holds a valid factor of the last `sub` (vs. the LU
    /// fallback having run).
    chol_valid: bool,
    // --- outputs ---
    g_loss: Matrix,
    gz: Matrix,
    dscores: Vec<f64>,
}

/// How the workspace computed the spectrum of the last instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpectrumPath {
    /// Full `m × m` eigendecomposition.
    #[default]
    Dense,
    /// `d × d` dual Gram eigendecomposition plus `ε`-eigenspace completion.
    Dual,
}

/// Result of one tailored-k-DPP loss/gradient evaluation.
#[derive(Debug, Clone, Copy)]
pub struct TailoredResult {
    /// The loss value (negative tailored log-probability, plus the exclusion
    /// term when negative-aware).
    pub loss: f64,
    /// Which spectral path ran.
    pub path: SpectrumPath,
}

impl DppWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        DppWorkspace::default()
    }

    /// Computes the LkP loss and score gradient for one instance.
    ///
    /// * `scores` — model scores `ŷ` over the ground set (length `m`; targets
    ///   occupy positions `0..k`, negatives `k..m`).
    /// * `k_sub` — the diversity kernel restricted to the ground set
    ///   (`m × m`, unjittered).
    /// * `factor_rows` — the gathered low-rank factor rows `V_T` (`m × d`)
    ///   when the diversity kernel is `K = V·Vᵀ`; enables the dual path when
    ///   `d < m`. Pass `None` for full-rank kernels (e.g. RBF over
    ///   embeddings).
    /// * `k` — the target cardinality; `negative_aware` adds the Eq. 10
    ///   exclusion term (requires `m = 2k`).
    /// * `jitter` — the `ε` of `L = Diag(q)·K_T·Diag(q) + ε·I`.
    /// * `score_clamp` — scores are clamped to `±score_clamp` before `exp`.
    ///
    /// Returns `None` when the kernel degenerates numerically (the instance
    /// is skipped upstream). On success, [`DppWorkspace::dscores`],
    /// [`DppWorkspace::grad_l`] and [`DppWorkspace::quality`] hold the
    /// outputs until the next call.
    #[allow(clippy::too_many_arguments)]
    pub fn tailored_loss_grad(
        &mut self,
        scores: &[f64],
        k_sub: &Matrix,
        factor_rows: Option<&Matrix>,
        k: usize,
        negative_aware: bool,
        jitter: f64,
        score_clamp: f64,
    ) -> Option<TailoredResult> {
        let m = scores.len();
        debug_assert_eq!(k_sub.shape(), (m, m));
        if k > m {
            return None;
        }
        // The exclusion term treats positions k..m as a size-k subset, which
        // only types out when n = k; a mis-shaped instance is skipped (the
        // cold path returned WrongSubsetSize here), not silently mis-scored.
        if negative_aware && m != 2 * k {
            return None;
        }

        // Quality vector q_i = exp(clamp(ŷ_i)) (paper Eq. 13).
        self.prepare_quality(scores, score_clamp);

        // Spectrum of L = Diag(q)·K_T·Diag(q) + ε·I, via whichever path is
        // cheaper. Both fill `self.lambda` (all m eigenvalues) and leave the
        // eigenbasis in path-specific storage consumed by `normalizer_grad`.
        let path = match factor_rows {
            Some(v_t) if v_t.cols() < m => {
                debug_assert_eq!(v_t.rows(), m);
                self.dual_spectrum(v_t, jitter)?;
                SpectrumPath::Dual
            }
            _ => {
                self.dense_spectrum(k_sub, jitter)?;
                SpectrumPath::Dense
            }
        };

        self.finish_from_spectrum(k_sub, k, negative_aware, jitter, path)
    }

    /// Everything downstream of the spectrum: ESP normalizer, leave-one-out
    /// weights, `∇log Z_k`, subset log-dets, and the chain back into score
    /// gradients. Expects `self.q`, `self.lambda`, and the path-specific
    /// eigenbasis (`self.eigen` for dense, `self.item_vectors` for dual) to
    /// be filled — by a fresh computation or by the spectral cache.
    fn finish_from_spectrum(
        &mut self,
        k_sub: &Matrix,
        k: usize,
        negative_aware: bool,
        jitter: f64,
        path: SpectrumPath,
    ) -> Option<TailoredResult> {
        let m = self.q.len();
        // Normalizer log Z_k = log e_k(λ) with overflow-safe rescaling, and
        // the leave-one-out gradient weights w_i = e_{k-1}(λ_{-i}) / e_k(λ).
        let scale = self.lambda.iter().cloned().fold(0.0_f64, f64::max);
        if scale <= 0.0 && k > 0 {
            return None;
        }
        self.scaled.clear();
        self.scaled
            .extend(self.lambda.iter().map(|&l| l / scale.max(1e-300)));
        esp::elementary_symmetric_all_into(&self.scaled, k, &mut self.esp_buf);
        let z_scaled = self.esp_buf[k];
        if z_scaled <= 0.0 && k > 0 {
            return None;
        }
        let log_z = if k == 0 {
            0.0
        } else {
            z_scaled.ln() + k as f64 * scale.ln()
        };
        if k > 0 {
            esp::leave_one_out_into(&self.scaled, k - 1, &mut self.loo_scratch, &mut self.loo);
            // e_{k-1}(λ_{-i})/e_k(λ) = e_{k-1}(scaled_{-i}) / (c · e_k(scaled)).
            let denom = scale * z_scaled;
            for w in &mut self.loo {
                *w /= denom;
            }
        } else {
            self.loo.clear();
        }

        // ∇_L log Z_k, shared by the inclusion and exclusion terms.
        self.normalizer_grad(path, m);

        // Inclusion term: loss = −log P(S⁺) = log Z_k − log det(L_{S⁺});
        // ∂loss/∂L = ∇log Z_k − scatter((L_{S⁺})⁻¹).
        let log_det_pos = self.subset_log_det(k_sub, 0..k, jitter)?;
        let log_p_pos = log_det_pos - log_z;
        if !log_p_pos.is_finite() {
            return None;
        }
        let mut loss = -log_p_pos;
        self.g_loss.copy_from(&self.gz);
        self.scatter_subset_inverse(0..k, -1.0);

        if negative_aware {
            // Exclusion of the all-negative subset S⁻ = {k..2k} (Eq. 10):
            // loss += −log(1 − P(S⁻));
            // ∂/∂L = P/(1−P) · ∇log P(S⁻) = P/(1−P)·(scatter(inv⁻) − ∇log Z).
            let log_det_neg = self.subset_log_det(k_sub, k..m, jitter)?;
            let log_p_neg = log_det_neg - log_z;
            let p_neg = log_p_neg.exp().clamp(0.0, 1.0 - 1e-9);
            loss += -(1.0 - p_neg).ln();
            let w = p_neg / (1.0 - p_neg);
            self.g_loss.add_scaled(-w, &self.gz).expect("same shape");
            self.scatter_subset_inverse(k..m, w);
        }

        // Chain into scores through L_ij = q_i·K_ij·q_j + ε·δ_ij:
        // ∂loss/∂q_i = 2·Σ_j G_ij·K_ij·q_j, then ∂loss/∂s_i = ∂loss/∂q_i·q_i.
        self.dscores.clear();
        for i in 0..m {
            let g_row = self.g_loss.row(i);
            let k_row = k_sub.row(i);
            let mut acc = 0.0;
            for ((&g, &kij), &qj) in g_row.iter().zip(k_row).zip(&self.q) {
                acc += g * kij * qj;
            }
            self.dscores.push(2.0 * acc * self.q[i]);
        }
        if !loss.is_finite() || self.dscores.iter().any(|d| !d.is_finite()) {
            return None;
        }
        Some(TailoredResult { loss, path })
    }

    /// Fills `self.q` with `exp(clamp(ŷ))` (paper Eq. 13).
    fn prepare_quality(&mut self, scores: &[f64], score_clamp: f64) {
        quality_into(scores, score_clamp, &mut self.q);
    }

    /// [`DppWorkspace::tailored_loss_grad`] reading the kernel inputs from
    /// the staging buffers [`DppWorkspace::k_sub`] / [`DppWorkspace::factor_rows`]
    /// (filled by the caller beforehand). `use_factor` selects whether the
    /// staged factor rows are offered for the dual path.
    pub fn tailored_loss_grad_staged(
        &mut self,
        scores: &[f64],
        k: usize,
        negative_aware: bool,
        use_factor: bool,
        jitter: f64,
        score_clamp: f64,
    ) -> Option<TailoredResult> {
        // Temporarily detach the staged buffers so the borrow checker sees
        // them as plain inputs; `mem::take`/restore moves no heap data.
        let k_sub = std::mem::take(&mut self.k_sub);
        let factor = std::mem::take(&mut self.factor_rows);
        let result = self.tailored_loss_grad(
            scores,
            &k_sub,
            if use_factor { Some(&factor) } else { None },
            k,
            negative_aware,
            jitter,
            score_clamp,
        );
        self.k_sub = k_sub;
        self.factor_rows = factor;
        result
    }

    /// [`DppWorkspace::tailored_loss_grad_staged`] consulting an
    /// epoch-persistent [`SpectralCache`] for the eigendecomposition stage.
    ///
    /// `user` and `items` identify the instance for cache keying (`items` is
    /// the ground set the staged `k_sub`/`factor_rows` were gathered for, in
    /// order). On a revisit whose quality vector moved at most `cache.tol()`
    /// in ∞-norm the cached spectrum is reused outright (the `O(m³)`/`O(d³)`
    /// eigen stage is skipped); a larger drift warm-starts the solver from
    /// the cached basis; everything else — first visits, changed ground
    /// sets, invalidated cached decompositions after a solver failure — is a
    /// cold recompute. A failed spectrum computation *removes* the entry, so
    /// the next visit of that ground set is forced cold rather than reusing
    /// poisoned state.
    ///
    /// Everything downstream of the spectrum (subset determinants, gradient
    /// chain) always uses the *current* scores, so with `tol = 0` results
    /// are bitwise identical to the uncached path.
    #[allow(clippy::too_many_arguments)]
    pub fn tailored_loss_grad_cached(
        &mut self,
        cache: &mut SpectralCache,
        user: usize,
        items: &[usize],
        scores: &[f64],
        k: usize,
        negative_aware: bool,
        use_factor: bool,
        jitter: f64,
        score_clamp: f64,
    ) -> Option<TailoredResult> {
        let k_sub = std::mem::take(&mut self.k_sub);
        let factor = std::mem::take(&mut self.factor_rows);
        let result = self.tailored_cached_inner(
            cache,
            user,
            items,
            scores,
            &k_sub,
            if use_factor { Some(&factor) } else { None },
            k,
            negative_aware,
            jitter,
            score_clamp,
        );
        self.k_sub = k_sub;
        self.factor_rows = factor;
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn tailored_cached_inner(
        &mut self,
        cache: &mut SpectralCache,
        user: usize,
        items: &[usize],
        scores: &[f64],
        k_sub: &Matrix,
        factor_rows: Option<&Matrix>,
        k: usize,
        negative_aware: bool,
        jitter: f64,
        score_clamp: f64,
    ) -> Option<TailoredResult> {
        let m = scores.len();
        debug_assert_eq!(k_sub.shape(), (m, m));
        debug_assert_eq!(items.len(), m);
        if k > m {
            return None;
        }
        if negative_aware && m != 2 * k {
            return None;
        }
        self.prepare_quality(scores, score_clamp);

        let path = match factor_rows {
            Some(v_t) if v_t.cols() < m => {
                debug_assert_eq!(v_t.rows(), m);
                SpectrumPath::Dual
            }
            _ => SpectrumPath::Dense,
        };
        let key = SpectralCache::key_of(user, items);
        let spectrum = match cache.classify(key, user, items, &self.q, path, jitter) {
            SpectralDecision::Skip => {
                let entry = cache.entry(key).expect("classified entry exists");
                self.lambda.clear();
                self.lambda.extend_from_slice(entry.lambda);
                match path {
                    SpectrumPath::Dense => {
                        self.eigen.values.clear();
                        self.eigen.values.extend_from_slice(&entry.eigen.values);
                        self.eigen.vectors.copy_from(&entry.eigen.vectors);
                    }
                    SpectrumPath::Dual => {
                        self.item_vectors.copy_from(entry.item_vectors);
                    }
                }
                Some(false)
            }
            SpectralDecision::WarmStart => {
                let computed = {
                    let entry = cache.entry(key).expect("classified entry exists");
                    match path {
                        SpectrumPath::Dense => self.dense_spectrum_warm(k_sub, jitter, entry.eigen),
                        SpectrumPath::Dual => {
                            let v_t = factor_rows.expect("dual path requires factor rows");
                            self.dual_spectrum_warm(v_t, jitter, entry.eigen)
                        }
                    }
                };
                computed.map(|()| true)
            }
            SpectralDecision::Cold => {
                let computed = match path {
                    SpectrumPath::Dense => self.dense_spectrum(k_sub, jitter),
                    SpectrumPath::Dual => {
                        let v_t = factor_rows.expect("dual path requires factor rows");
                        self.dual_spectrum(v_t, jitter)
                    }
                };
                computed.map(|()| true)
            }
        };
        let store = match spectrum {
            Some(store) => store,
            None => {
                // The eigen solver failed on this ground set: retire the
                // entry so no poisoned decomposition can be revisited.
                cache.remove(key);
                return None;
            }
        };
        if store {
            match path {
                SpectrumPath::Dense => cache.store(
                    key,
                    user,
                    items,
                    &self.q,
                    path,
                    jitter,
                    &self.lambda,
                    &self.eigen,
                    None,
                ),
                SpectrumPath::Dual => cache.store(
                    key,
                    user,
                    items,
                    &self.q,
                    path,
                    jitter,
                    &self.lambda,
                    &self.dual_eigen,
                    Some(&self.item_vectors),
                ),
            }
        }
        self.finish_from_spectrum(k_sub, k, negative_aware, jitter, path)
    }

    /// Stages one instance of a uniform-shape dispatch into an arena `slot`
    /// (see [`crate::batch::DppBatchArena`]): computes the quality vector and
    /// assembles the matrix the eigen stage must decompose — the full
    /// tailored kernel `L` on the dense path, the dual Gram `BᵀB` on the
    /// dual path. The caller must have filled `slot.k_sub` (and, when
    /// `use_factor`, [`DppWorkspace::factor_rows`]) beforehand. Instances
    /// whose shape is invalid (`k > m`, or a negative-aware instance with
    /// `m ≠ 2k`) mark the slot skipped, exactly as the inline path returns
    /// `None` for them.
    ///
    /// The staged math is operation-for-operation the inline
    /// [`DppWorkspace::tailored_loss_grad_staged`] prologue, so a
    /// stage → batched-solve → [`DppWorkspace::finish_slot`] pipeline is
    /// bitwise identical to interleaved per-instance computation.
    #[allow(clippy::too_many_arguments)]
    pub fn stage_slot(
        &mut self,
        slot: &mut BatchSlot,
        scores: &[f64],
        k: usize,
        negative_aware: bool,
        use_factor: bool,
        jitter: f64,
        score_clamp: f64,
    ) {
        let m = scores.len();
        debug_assert_eq!(slot.k_sub.shape(), (m, m));
        slot.k = k;
        slot.m = m;
        if k > m || (negative_aware && m != 2 * k) {
            slot.state = SlotState::Skipped;
            return;
        }
        // Same helpers as the inline prologue (`prepare_quality`,
        // `assemble_dense`, `assemble_dual`), writing into the slot's
        // buffers — the stage/inline bitwise identity is structural.
        quality_into(scores, score_clamp, &mut slot.q);
        slot.path = match use_factor {
            true if self.factor_rows.cols() < m => {
                debug_assert_eq!(self.factor_rows.rows(), m);
                assemble_b_into(&slot.q, &self.factor_rows, &mut slot.b);
                slot.b.gram_into(&mut slot.mat);
                SpectrumPath::Dual
            }
            _ => {
                assemble_tailored_into(&slot.q, &slot.k_sub, jitter, &mut slot.mat);
                SpectrumPath::Dense
            }
        };
        slot.state = SlotState::Staged;
    }

    /// Runs everything downstream of the eigen stage for a staged-and-solved
    /// arena slot: loads the slot's spectrum into the workspace and completes
    /// the pipeline via the shared [`DppWorkspace::finish_from_spectrum`].
    /// Returns `None` for skipped slots, failed (invalidated)
    /// decompositions — the same instances the inline path skips — and for
    /// slots the arena's solve pass never reached (`solve_all` advances
    /// slots to [`SlotState::Solved`]; a merely staged slot may still hold a
    /// *previous* dispatch's valid decomposition, which must never be
    /// combined with this dispatch's inputs).
    pub fn finish_slot(
        &mut self,
        slot: &BatchSlot,
        negative_aware: bool,
        jitter: f64,
    ) -> Option<TailoredResult> {
        if slot.state != SlotState::Solved || !slot.eigen.is_valid() {
            return None;
        }
        self.q.clear();
        self.q.extend_from_slice(&slot.q);
        match slot.path {
            SpectrumPath::Dense => {
                self.eigen.values.clear();
                self.eigen.values.extend_from_slice(&slot.eigen.values);
                self.eigen.vectors.copy_from(&slot.eigen.vectors);
                self.eigen.clamped_nonnegative_values_into(&mut self.lambda);
            }
            SpectrumPath::Dual => {
                self.b.copy_from(&slot.b);
                self.dual_eigen.values.clear();
                self.dual_eigen.values.extend_from_slice(&slot.eigen.values);
                self.dual_eigen.vectors.copy_from(&slot.eigen.vectors);
                self.dual_finish(slot.m, jitter);
            }
        }
        self.finish_from_spectrum(&slot.k_sub, slot.k, negative_aware, jitter, slot.path)
    }

    /// Score gradient `∂loss/∂ŷ` of the last successful call.
    pub fn dscores(&self) -> &[f64] {
        &self.dscores
    }

    /// Kernel gradient `∂loss/∂L` of the last successful call (used by the
    /// E-type objective to chain into embeddings).
    pub fn grad_l(&self) -> &Matrix {
        &self.g_loss
    }

    /// Quality vector `q = exp(clamp(ŷ))` of the last successful call.
    pub fn quality(&self) -> &[f64] {
        &self.q
    }

    /// Assembles the full tailored kernel `L = Diag(q)·K_T·Diag(q) + ε·I`
    /// into `self.l`.
    fn assemble_dense(&mut self, k_sub: &Matrix, jitter: f64) {
        assemble_tailored_into(&self.q, k_sub, jitter, &mut self.l);
    }

    /// Dense spectrum: assemble the full `L` and eigendecompose it.
    fn dense_spectrum(&mut self, k_sub: &Matrix, jitter: f64) -> Option<()> {
        self.assemble_dense(k_sub, jitter);
        self.eigen
            .compute_into(&self.l, &mut self.eig_scratch)
            .ok()?;
        self.eigen.clamped_nonnegative_values_into(&mut self.lambda);
        Some(())
    }

    /// [`DppWorkspace::dense_spectrum`] warm-started from a cached
    /// decomposition of the same ground set's previous tailored kernel.
    fn dense_spectrum_warm(
        &mut self,
        k_sub: &Matrix,
        jitter: f64,
        seed: &SymmetricEigen,
    ) -> Option<()> {
        self.assemble_dense(k_sub, jitter);
        self.eigen
            .compute_warm(&self.l, seed, &mut self.eig_scratch)
            .ok()?;
        self.eigen.clamped_nonnegative_values_into(&mut self.lambda);
        Some(())
    }

    /// Assembles `B = Diag(q)·V_T` and the dual Gram `BᵀB` into
    /// `self.b`/`self.dual`.
    fn assemble_dual(&mut self, v_t: &Matrix) {
        assemble_b_into(&self.q, v_t, &mut self.b);
        self.b.gram_into(&mut self.dual);
    }

    /// Dual spectrum: eigendecompose `BᵀB` (`d × d`) for `B = Diag(q)·V_T`,
    /// recover item-space eigenvectors, and append the flat `ε` eigenspace.
    ///
    /// Fills `lambda` as `[µ_1+ε, …, µ_r+ε, ε, …, ε]` (retained dual
    /// eigenvalues first, then `m − r` copies of `ε`) and `item_vectors`
    /// with the matching `m × r` item-space eigenvectors.
    fn dual_spectrum(&mut self, v_t: &Matrix, jitter: f64) -> Option<()> {
        self.assemble_dual(v_t);
        self.dual_eigen
            .compute_into(&self.dual, &mut self.eig_scratch)
            .ok()?;
        self.dual_finish(v_t.rows(), jitter);
        Some(())
    }

    /// [`DppWorkspace::dual_spectrum`] with the dual Gram eigendecomposition
    /// warm-started from a cached decomposition.
    fn dual_spectrum_warm(
        &mut self,
        v_t: &Matrix,
        jitter: f64,
        seed: &SymmetricEigen,
    ) -> Option<()> {
        self.assemble_dual(v_t);
        self.dual_eigen
            .compute_warm(&self.dual, seed, &mut self.eig_scratch)
            .ok()?;
        self.dual_finish(v_t.rows(), jitter);
        Some(())
    }

    /// Shared dual-path tail: retained eigenvalues, flat `ε` completion, and
    /// item-space eigenvector recovery from `self.dual_eigen`.
    fn dual_finish(&mut self, m: usize, jitter: f64) {
        let d = self.dual_eigen.dim();
        let max_mu = self
            .dual_eigen
            .values
            .iter()
            .cloned()
            .fold(0.0_f64, f64::max);
        // Retained dual eigenvalues, largest first (ascending from the
        // solver; walk backwards so lambda is descending then flat).
        self.lambda.clear();
        self.retained_idx.clear();
        for idx in (0..d).rev() {
            let mu = self.dual_eigen.values[idx];
            if mu > DUAL_RANK_TOL * max_mu && mu > 0.0 {
                self.lambda.push(mu + jitter);
                self.retained_idx.push(idx);
            }
        }
        let r = self.lambda.len();
        self.lambda.resize(m, jitter);

        // Item-space eigenvectors v̂_j = B·w_j / √µ_j for the retained µ.
        self.item_vectors.reset(m, r);
        for (col, &idx) in self.retained_idx.iter().enumerate() {
            let inv_sqrt = 1.0 / (self.lambda[col] - jitter).sqrt();
            for row in 0..m {
                let mut acc = 0.0;
                let brow = self.b.row(row);
                for (x, &bv) in brow.iter().enumerate() {
                    acc += bv * self.dual_eigen.vectors[(x, idx)];
                }
                self.item_vectors[(row, col)] = acc * inv_sqrt;
            }
        }
    }

    /// Builds `gz = ∇_L log Z_k = Σ_i w_i·u_i·u_iᵀ` from the loo weights and
    /// whichever eigenbasis the spectrum path produced.
    fn normalizer_grad(&mut self, path: SpectrumPath, m: usize) {
        if self.loo.is_empty() {
            self.gz.reset(m, m);
            return;
        }
        // Both branches accumulate rank-1 terms `w·u·uᵀ`. Eigenvectors are
        // stored column-major inside a row-major matrix, so each column is
        // first copied into the contiguous `col` scratch — the inner update
        // then runs over two contiguous slices and auto-vectorizes.
        let gz = &mut self.gz;
        let col = &mut self.col;
        gz.reset(m, m);
        match path {
            SpectrumPath::Dense => {
                for (idx, &w) in self.loo.iter().enumerate() {
                    if w == 0.0 {
                        continue;
                    }
                    col.clear();
                    col.extend((0..m).map(|r| self.eigen.vectors[(r, idx)]));
                    rank_one_update(gz, w, col);
                }
            }
            SpectrumPath::Dual => {
                // gz = w0·I + Σ_j (w_j − w0)·v̂_j·v̂_jᵀ, where w0 is the
                // shared weight of the flat ε eigenspace: its eigenvectors
                // never materialize — the identity-minus-projector form
                // absorbs them exactly because their loo weights coincide.
                let r = self.item_vectors.cols();
                let w0 = if r < m { self.loo[r] } else { 0.0 };
                for i in 0..m {
                    gz[(i, i)] = w0;
                }
                for j in 0..r {
                    let wj = self.loo[j] - w0;
                    if wj == 0.0 {
                        continue;
                    }
                    col.clear();
                    col.extend((0..m).map(|a| self.item_vectors[(a, j)]));
                    rank_one_update(gz, wj, col);
                }
            }
        }
    }

    /// `log det(L_S + …)` for a contiguous ground-set range, assembling the
    /// submatrix directly from `k_sub`/`q` (no full `L` required). Returns
    /// `None` only on hard numerical failure; numerically singular subsets
    /// yield `-inf` (skipped upstream as non-finite log-probability).
    fn subset_log_det(
        &mut self,
        k_sub: &Matrix,
        range: std::ops::Range<usize>,
        jitter: f64,
    ) -> Option<f64> {
        let s = range.len();
        self.sub.reset(s, s);
        for (a, i) in range.clone().enumerate() {
            let qi = self.q[i];
            for (b, j) in range.clone().enumerate() {
                self.sub[(a, b)] = qi * k_sub[(i, j)] * self.q[j];
            }
            self.sub[(a, a)] += jitter;
        }
        match cholesky::factor_into(&self.sub, &mut self.chol) {
            Ok(()) => {
                self.chol_valid = true;
                Some(cholesky::log_det_from_factor(&self.chol))
            }
            Err(_) => {
                // Round-off indefiniteness: fall back to LU (cold path; may
                // allocate — degenerate instances are rare and skipped).
                self.chol_valid = false;
                let lu = lkp_linalg::Lu::new(&self.sub).ok()?;
                let (sign, log_det) = lu.sign_log_det();
                Some(if sign > 0.0 {
                    log_det
                } else {
                    f64::NEG_INFINITY
                })
            }
        }
    }

    /// Adds `alpha · scatter((L_S)⁻¹)` into `g_loss` for the subset whose
    /// submatrix [`DppWorkspace::subset_log_det`] just factorized.
    ///
    /// Must be called immediately after a successful `subset_log_det` for the
    /// same range: it reuses the Cholesky factor still held in `self.chol`.
    fn scatter_subset_inverse(&mut self, range: std::ops::Range<usize>, alpha: f64) {
        if alpha == 0.0 {
            // Zero-weight term (e.g. an exclusion subset with P(S⁻) = 0):
            // skip rather than risk 0·∞ from a numerically singular inverse.
            return;
        }
        if self.chol_valid {
            cholesky::inverse_from_factor(&self.chol, &mut self.inv, &mut self.col);
        } else {
            // LU fallback path: cold-path inverse of the saved submatrix.
            if let Ok(inv) = lkp_linalg::lu::inverse(&self.sub) {
                self.inv.copy_from(&inv);
            } else {
                return;
            }
        }
        for (a, i) in range.clone().enumerate() {
            for (b, j) in range.clone().enumerate() {
                self.g_loss[(i, j)] += alpha * self.inv[(a, b)];
            }
        }
    }
}

/// Fills `out` with the quality vector `q_i = exp(clamp(ŷ_i))` (paper
/// Eq. 13). Shared by the inline prologue and the batched stage path so the
/// two are the same arithmetic by construction.
fn quality_into(scores: &[f64], score_clamp: f64, out: &mut Vec<f64>) {
    out.clear();
    out.extend(
        scores
            .iter()
            .map(|&s| s.clamp(-score_clamp, score_clamp).exp()),
    );
}

/// Assembles the tailored kernel `L = Diag(q)·K_T·Diag(q) + ε·I` into `out`.
/// Shared by the inline dense path and the batched stage path.
fn assemble_tailored_into(q: &[f64], k_sub: &Matrix, jitter: f64, out: &mut Matrix) {
    let m = q.len();
    out.reset(m, m);
    for i in 0..m {
        let qi = q[i];
        let krow = k_sub.row(i);
        let lrow = out.row_mut(i);
        for ((slot, &kij), &qj) in lrow.iter_mut().zip(krow).zip(q) {
            *slot = qi * kij * qj;
        }
        lrow[i] += jitter;
    }
}

/// Assembles `B = Diag(q)·V_T` into `out` (the dual path's factor; callers
/// follow with `gram_into` for `BᵀB`). Shared by the inline dual path and
/// the batched stage path.
fn assemble_b_into(q: &[f64], v_t: &Matrix, out: &mut Matrix) {
    let m = v_t.rows();
    let d = v_t.cols();
    out.reset(m, d);
    for (i, &qi) in q.iter().enumerate().take(m) {
        let src = v_t.row(i);
        let dst = out.row_mut(i);
        for (slot, &v) in dst.iter_mut().zip(src) {
            *slot = qi * v;
        }
    }
}

/// `out += w · u·uᵀ` from a contiguous vector — branch-free inner axpy.
fn rank_one_update(out: &mut Matrix, w: f64, u: &[f64]) {
    for (r, &ur) in u.iter().enumerate() {
        let coeff = w * ur;
        let row = out.row_mut(r);
        for (slot, &uc) in row.iter_mut().zip(u) {
            *slot += coeff * uc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{grad, DppKernel, KDpp, LowRankKernel};

    /// Cold-path reference: the same loss/gradient computed through the
    /// allocating KDpp/grad types, with the identical L-space jitter.
    fn reference(
        scores: &[f64],
        k_sub: &Matrix,
        k: usize,
        negative_aware: bool,
        jitter: f64,
    ) -> Option<(f64, Vec<f64>)> {
        let m = scores.len();
        let q: Vec<f64> = scores.iter().map(|&s| s.exp()).collect();
        let mut l = Matrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                l[(i, j)] = q[i] * k_sub[(i, j)] * q[j];
            }
            l[(i, i)] += jitter;
        }
        let kdpp = KDpp::new(DppKernel::new(l).ok()?, k).ok()?;
        let target: Vec<usize> = (0..k).collect();
        let log_p = kdpp.log_prob(&target).ok()?;
        let mut g = grad::grad_log_prob(&kdpp, &target).ok()?;
        g.scale(-1.0);
        let mut loss = -log_p;
        if negative_aware {
            let negative: Vec<usize> = (k..m).collect();
            let log_p_neg = kdpp.log_prob(&negative).ok()?;
            let p_neg = log_p_neg.exp().clamp(0.0, 1.0 - 1e-9);
            loss += -(1.0 - p_neg).ln();
            let g_neg = grad::grad_log_prob(&kdpp, &negative).ok()?;
            g.add_scaled(p_neg / (1.0 - p_neg), &g_neg).ok()?;
        }
        let mut dscores = Vec::with_capacity(m);
        for i in 0..m {
            let mut acc = 0.0;
            for j in 0..m {
                acc += g[(i, j)] * k_sub[(i, j)] * q[j];
            }
            dscores.push(2.0 * acc * q[i]);
        }
        Some((loss, dscores))
    }

    fn example_kernel(m: usize, d: usize) -> LowRankKernel {
        let v = Matrix::from_fn(m, d, |r, c| (((r * 13 + c * 7) % 11) as f64) * 0.2 - 1.0);
        LowRankKernel::new(v).normalized()
    }

    fn example_scores(m: usize) -> Vec<f64> {
        (0..m).map(|i| ((i * 7 % 5) as f64) * 0.3 - 0.6).collect()
    }

    #[test]
    fn dense_path_matches_cold_reference() {
        let m = 6;
        let k_sub = example_kernel(m, 8).full_matrix(); // d ≥ m → dense
        let scores = example_scores(m);
        let mut ws = DppWorkspace::new();
        for negative_aware in [false, true] {
            let res = ws
                .tailored_loss_grad(&scores, &k_sub, None, 3, negative_aware, 1e-6, 30.0)
                .expect("well-conditioned instance");
            assert_eq!(res.path, SpectrumPath::Dense);
            let (loss, dscores) = reference(&scores, &k_sub, 3, negative_aware, 1e-6).unwrap();
            assert!(
                (res.loss - loss).abs() < 1e-10,
                "loss {} vs {loss}",
                res.loss
            );
            for (a, b) in ws.dscores().iter().zip(&dscores) {
                assert!((a - b).abs() < 1e-9, "grad {a} vs {b}");
            }
        }
    }

    #[test]
    fn dual_path_matches_dense_path() {
        let m = 10;
        let d = 4;
        let kernel = example_kernel(m, d);
        let idx: Vec<usize> = (0..m).collect();
        let k_sub = kernel.submatrix(&idx).unwrap();
        let v_t = kernel.factor().gather_rows(&idx).unwrap();
        let scores = example_scores(m);
        for negative_aware in [false, true] {
            let mut ws_dense = DppWorkspace::new();
            let dense = ws_dense
                .tailored_loss_grad(&scores, &k_sub, None, 5, negative_aware, 1e-6, 30.0)
                .expect("dense instance");
            assert_eq!(dense.path, SpectrumPath::Dense);

            let mut ws_dual = DppWorkspace::new();
            let dual = ws_dual
                .tailored_loss_grad(&scores, &k_sub, Some(&v_t), 5, negative_aware, 1e-6, 30.0)
                .expect("dual instance");
            assert_eq!(dual.path, SpectrumPath::Dual);

            assert!(
                (dense.loss - dual.loss).abs() < 1e-8,
                "losses diverge: {} vs {}",
                dense.loss,
                dual.loss
            );
            for (a, b) in ws_dense.dscores().iter().zip(ws_dual.dscores()) {
                assert!((a - b).abs() < 1e-7, "grads diverge: {a} vs {b}");
            }
        }
    }

    #[test]
    fn dual_path_not_taken_when_factor_is_wide() {
        let m = 5;
        let kernel = example_kernel(m, 8); // d = 8 ≥ m = 5
        let idx: Vec<usize> = (0..m).collect();
        let k_sub = kernel.submatrix(&idx).unwrap();
        let v_t = kernel.factor().gather_rows(&idx).unwrap();
        let mut ws = DppWorkspace::new();
        let res = ws
            .tailored_loss_grad(&example_scores(m), &k_sub, Some(&v_t), 2, false, 1e-6, 30.0)
            .unwrap();
        assert_eq!(res.path, SpectrumPath::Dense);
    }

    #[test]
    fn gradients_match_finite_difference_both_paths() {
        // d ≥ k keeps the target submatrix full-rank (well-conditioned FD);
        // d < m still exercises the dual path.
        let m = 8;
        let d = 6;
        let kernel = example_kernel(m, d);
        let idx: Vec<usize> = (0..m).collect();
        let k_sub = kernel.submatrix(&idx).unwrap();
        let v_t = kernel.factor().gather_rows(&idx).unwrap();
        let scores = example_scores(m);
        let h = 1e-6;
        for factor in [None, Some(&v_t)] {
            for negative_aware in [false, true] {
                let mut ws = DppWorkspace::new();
                let k = 4;
                ws.tailored_loss_grad(&scores, &k_sub, factor, k, negative_aware, 1e-6, 30.0)
                    .unwrap();
                let analytic = ws.dscores().to_vec();
                for i in 0..m {
                    let mut plus = scores.clone();
                    plus[i] += h;
                    let mut minus = scores.clone();
                    minus[i] -= h;
                    let lp = ws
                        .tailored_loss_grad(&plus, &k_sub, factor, k, negative_aware, 1e-6, 30.0)
                        .unwrap()
                        .loss;
                    let lm = ws
                        .tailored_loss_grad(&minus, &k_sub, factor, k, negative_aware, 1e-6, 30.0)
                        .unwrap()
                        .loss;
                    let fd = (lp - lm) / (2.0 * h);
                    assert!(
                        (fd - analytic[i]).abs() < 1e-5,
                        "path {:?} nps={negative_aware} dim {i}: fd {fd} vs {}",
                        factor.map(|_| "dual").unwrap_or("dense"),
                        analytic[i]
                    );
                }
            }
        }
    }

    #[test]
    fn workspace_reuse_is_consistent_across_shapes() {
        // One workspace driven through different (m, k) shapes must keep
        // matching fresh workspaces — buffers never leak stale state.
        let mut ws = DppWorkspace::new();
        for (m, d, k) in [(6, 3, 3), (10, 4, 5), (4, 2, 2), (8, 3, 4)] {
            let kernel = example_kernel(m, d);
            let idx: Vec<usize> = (0..m).collect();
            let k_sub = kernel.submatrix(&idx).unwrap();
            let v_t = kernel.factor().gather_rows(&idx).unwrap();
            let scores = example_scores(m);
            let reused = ws
                .tailored_loss_grad(&scores, &k_sub, Some(&v_t), k, false, 1e-6, 30.0)
                .unwrap();
            let mut fresh_ws = DppWorkspace::new();
            let fresh = fresh_ws
                .tailored_loss_grad(&scores, &k_sub, Some(&v_t), k, false, 1e-6, 30.0)
                .unwrap();
            assert_eq!(
                reused.loss.to_bits(),
                fresh.loss.to_bits(),
                "shape ({m},{k})"
            );
            assert_eq!(ws.dscores(), fresh_ws.dscores());
        }
    }

    #[test]
    fn negative_aware_with_mismatched_shape_is_skipped() {
        // n != k: the exclusion subset is not a valid size-k subset. The
        // cold path surfaced WrongSubsetSize; the workspace must skip (None)
        // rather than mis-score the size-n block in release builds.
        let m = 8; // k = 3, n = 5
        let k_sub = example_kernel(m, 8).full_matrix();
        let mut ws = DppWorkspace::new();
        assert!(ws
            .tailored_loss_grad(&example_scores(m), &k_sub, None, 3, true, 1e-6, 30.0)
            .is_none());
        // k > m is likewise a skip, not a panic.
        assert!(ws
            .tailored_loss_grad(&example_scores(m), &k_sub, None, 9, false, 1e-6, 30.0)
            .is_none());
    }

    /// Drives the cached entry point with staged buffers for one instance.
    #[allow(clippy::too_many_arguments)]
    fn cached_call(
        ws: &mut DppWorkspace,
        cache: &mut crate::SpectralCache,
        kernel: &LowRankKernel,
        user: usize,
        items: &[usize],
        scores: &[f64],
        k: usize,
        use_factor: bool,
    ) -> Option<TailoredResult> {
        kernel.submatrix_into(items, &mut ws.k_sub).unwrap();
        kernel.gather_rows_into(items, &mut ws.factor_rows).unwrap();
        ws.tailored_loss_grad_cached(cache, user, items, scores, k, false, use_factor, 1e-6, 30.0)
    }

    #[test]
    fn cached_skip_is_bitwise_identical_to_uncached() {
        // Same scores revisited: with any tol the drift is 0 → skip, and the
        // reused spectrum is bitwise the one a recompute would produce.
        for use_factor in [false, true] {
            let m = 8;
            let d = if use_factor { 4 } else { 10 };
            let kernel = example_kernel(20, d);
            let items: Vec<usize> = (2..2 + m).collect();
            let scores = example_scores(m);

            let mut ws_ref = DppWorkspace::new();
            kernel.submatrix_into(&items, &mut ws_ref.k_sub).unwrap();
            kernel
                .gather_rows_into(&items, &mut ws_ref.factor_rows)
                .unwrap();
            let reference = ws_ref
                .tailored_loss_grad_staged(&scores, 4, false, use_factor, 1e-6, 30.0)
                .unwrap();

            let mut ws = DppWorkspace::new();
            let mut cache = crate::SpectralCache::new(0.0, 64);
            let first = cached_call(
                &mut ws, &mut cache, &kernel, 7, &items, &scores, 4, use_factor,
            )
            .unwrap();
            let second = cached_call(
                &mut ws, &mut cache, &kernel, 7, &items, &scores, 4, use_factor,
            )
            .unwrap();
            assert_eq!(first.path, reference.path);
            assert_eq!(first.loss.to_bits(), reference.loss.to_bits());
            assert_eq!(second.loss.to_bits(), reference.loss.to_bits());
            for (a, b) in ws.dscores().iter().zip(ws_ref.dscores()) {
                assert_eq!(a.to_bits(), b.to_bits(), "use_factor={use_factor}");
            }
            let stats = cache.stats();
            assert_eq!((stats.cold, stats.skips), (1, 1), "use_factor={use_factor}");
        }
    }

    #[test]
    fn cached_warm_start_matches_uncached_to_solver_roundoff() {
        for use_factor in [false, true] {
            let m = 8;
            let d = if use_factor { 4 } else { 10 };
            let kernel = example_kernel(20, d);
            let items: Vec<usize> = (0..m).collect();
            let scores = example_scores(m);

            let mut ws = DppWorkspace::new();
            let mut cache = crate::SpectralCache::new(1e-9, 64);
            cached_call(
                &mut ws, &mut cache, &kernel, 3, &items, &scores, 4, use_factor,
            )
            .unwrap();

            // Drift the scores well past tol → warm start.
            let drifted: Vec<f64> = scores.iter().map(|s| s + 1e-3).collect();
            let warm = cached_call(
                &mut ws, &mut cache, &kernel, 3, &items, &drifted, 4, use_factor,
            )
            .unwrap();
            assert_eq!(cache.stats().warm_starts, 1, "use_factor={use_factor}");

            let mut ws_ref = DppWorkspace::new();
            kernel.submatrix_into(&items, &mut ws_ref.k_sub).unwrap();
            kernel
                .gather_rows_into(&items, &mut ws_ref.factor_rows)
                .unwrap();
            let exact = ws_ref
                .tailored_loss_grad_staged(&drifted, 4, false, use_factor, 1e-6, 30.0)
                .unwrap();
            assert!(
                (warm.loss - exact.loss).abs() < 1e-9,
                "use_factor={use_factor}: warm {} vs exact {}",
                warm.loss,
                exact.loss
            );
            for (a, b) in ws.dscores().iter().zip(ws_ref.dscores()) {
                assert!((a - b).abs() < 1e-8, "use_factor={use_factor}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn cached_skip_approximation_stays_within_tolerance() {
        // Tiny drift under tol → skip; the approximated loss must stay close
        // to the exact one (the spectrum moved O(drift)).
        let m = 8;
        let kernel = example_kernel(20, 10);
        let items: Vec<usize> = (0..m).collect();
        let scores = example_scores(m);
        let mut ws = DppWorkspace::new();
        let mut cache = crate::SpectralCache::new(1e-6, 64);
        cached_call(&mut ws, &mut cache, &kernel, 0, &items, &scores, 4, false).unwrap();
        let drifted: Vec<f64> = scores.iter().map(|s| s + 1e-8).collect();
        let skipped =
            cached_call(&mut ws, &mut cache, &kernel, 0, &items, &drifted, 4, false).unwrap();
        assert_eq!(cache.stats().skips, 1);
        let mut ws_ref = DppWorkspace::new();
        let exact = ws_ref
            .tailored_loss_grad(
                &drifted,
                &kernel.submatrix(&items).unwrap(),
                None,
                4,
                false,
                1e-6,
                30.0,
            )
            .unwrap();
        assert!(
            (skipped.loss - exact.loss).abs() < 1e-6,
            "skip drifted too far: {} vs {}",
            skipped.loss,
            exact.loss
        );
    }

    #[test]
    fn failed_spectrum_retires_the_cache_entry() {
        let m = 6;
        let kernel = example_kernel(12, 8);
        let items: Vec<usize> = (0..m).collect();
        let scores = example_scores(m);
        let mut ws = DppWorkspace::new();
        let mut cache = crate::SpectralCache::new(1e-4, 64);
        cached_call(&mut ws, &mut cache, &kernel, 1, &items, &scores, 3, false).unwrap();
        assert_eq!(cache.len(), 1);
        // NaN scores: quality is non-finite → classify goes cold, the eigen
        // solver fails, and the entry must be removed.
        let poisoned = vec![f64::NAN; m];
        assert!(
            cached_call(&mut ws, &mut cache, &kernel, 1, &items, &poisoned, 3, false).is_none()
        );
        assert_eq!(cache.len(), 0, "failed spectrum must retire the entry");
        // The next good visit is a forced cold recompute, identical to an
        // uncached evaluation.
        let recovered =
            cached_call(&mut ws, &mut cache, &kernel, 1, &items, &scores, 3, false).unwrap();
        let mut ws_ref = DppWorkspace::new();
        let exact = ws_ref
            .tailored_loss_grad(
                &scores,
                &kernel.submatrix(&items).unwrap(),
                None,
                3,
                false,
                1e-6,
                30.0,
            )
            .unwrap();
        assert_eq!(recovered.loss.to_bits(), exact.loss.to_bits());
        assert_eq!(cache.stats().cold, 3);
    }

    #[test]
    fn changed_ground_set_is_a_cold_recompute() {
        let kernel = example_kernel(20, 10);
        let scores = example_scores(6);
        let mut ws = DppWorkspace::new();
        let mut cache = crate::SpectralCache::new(1.0, 64);
        let a: Vec<usize> = (0..6).collect();
        let b: Vec<usize> = (6..12).collect();
        cached_call(&mut ws, &mut cache, &kernel, 2, &a, &scores, 3, false).unwrap();
        cached_call(&mut ws, &mut cache, &kernel, 2, &b, &scores, 3, false).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.cold, 2);
        assert_eq!(stats.skips, 0);
        // Both ground sets are now resident (distinct keys).
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn batched_arena_pipeline_is_bitwise_identical_to_inline() {
        // stage-all → solve-all → finish-all must reproduce the interleaved
        // per-instance pipeline bit for bit, on both spectral paths.
        use crate::batch::DppBatchArena;
        for use_factor in [false, true] {
            let m = 8;
            let d = if use_factor { 4 } else { 10 };
            let kernel = example_kernel(24, d);
            let instance_sets: Vec<Vec<usize>> = (0..5).map(|i| (i..i + m).collect()).collect();
            let score_sets: Vec<Vec<f64>> = (0..5)
                .map(|i| {
                    example_scores(m)
                        .iter()
                        .map(|s| s + 0.05 * i as f64)
                        .collect()
                })
                .collect();

            // Inline reference.
            let mut ws_ref = DppWorkspace::new();
            let mut reference = Vec::new();
            for (items, scores) in instance_sets.iter().zip(&score_sets) {
                kernel.submatrix_into(items, &mut ws_ref.k_sub).unwrap();
                kernel
                    .gather_rows_into(items, &mut ws_ref.factor_rows)
                    .unwrap();
                let res = ws_ref
                    .tailored_loss_grad_staged(scores, 4, true, use_factor, 1e-6, 30.0)
                    .expect("well-conditioned");
                reference.push((res.loss, ws_ref.dscores().to_vec(), res.path));
            }

            // Batched arena pipeline.
            let mut ws = DppWorkspace::new();
            let mut arena = DppBatchArena::new();
            for _round in 0..2 {
                // Round 2 reuses the grown buffers — results must not move.
                arena.begin(instance_sets.len());
                for (i, (items, scores)) in instance_sets.iter().zip(&score_sets).enumerate() {
                    kernel.gather_rows_into(items, &mut ws.factor_rows).unwrap();
                    let slot = arena.slot_mut(i);
                    kernel.submatrix_into(items, &mut slot.k_sub).unwrap();
                    ws.stage_slot(slot, scores, 4, true, use_factor, 1e-6, 30.0);
                }
                assert_eq!(arena.solve_all(), 0);
                for (i, (want_loss, want_dscores, want_path)) in reference.iter().enumerate() {
                    let res = ws
                        .finish_slot(arena.slot(i), true, 1e-6)
                        .expect("well-conditioned");
                    assert_eq!(res.path, *want_path, "use_factor={use_factor}");
                    assert_eq!(
                        res.loss.to_bits(),
                        want_loss.to_bits(),
                        "use_factor={use_factor} instance {i}"
                    );
                    for (a, b) in ws.dscores().iter().zip(want_dscores) {
                        assert_eq!(a.to_bits(), b.to_bits(), "use_factor={use_factor}");
                    }
                }
            }
        }
    }

    #[test]
    fn batched_arena_skips_invalid_shapes_and_failed_solves() {
        use crate::batch::DppBatchArena;
        let m = 6;
        let kernel = example_kernel(12, 8);
        let items: Vec<usize> = (0..m).collect();
        let good = example_scores(m);
        let poisoned = vec![f64::NAN; m];
        let mut ws = DppWorkspace::new();
        let mut arena = DppBatchArena::new();
        arena.begin(3);
        // Slot 0: negative-aware shape mismatch (m ≠ 2k) → skipped pre-solve.
        kernel
            .submatrix_into(&items, &mut arena.slot_mut(0).k_sub)
            .unwrap();
        ws.stage_slot(arena.slot_mut(0), &good, 2, true, false, 1e-6, 30.0);
        // Slot 1: NaN scores → eigen fails, slot invalidated.
        kernel
            .submatrix_into(&items, &mut arena.slot_mut(1).k_sub)
            .unwrap();
        ws.stage_slot(arena.slot_mut(1), &poisoned, 3, false, false, 1e-6, 30.0);
        // Slot 2: healthy.
        kernel
            .submatrix_into(&items, &mut arena.slot_mut(2).k_sub)
            .unwrap();
        ws.stage_slot(arena.slot_mut(2), &good, 3, false, false, 1e-6, 30.0);
        let failures = arena.solve_all();
        assert_eq!(failures, 1, "only the NaN slot fails");
        assert!(ws.finish_slot(arena.slot(0), true, 1e-6).is_none());
        assert!(ws.finish_slot(arena.slot(1), false, 1e-6).is_none());
        let ok = ws
            .finish_slot(arena.slot(2), false, 1e-6)
            .expect("healthy slot unaffected by neighbors");
        let mut ws_ref = DppWorkspace::new();
        let exact = ws_ref
            .tailored_loss_grad(
                &good,
                &kernel.submatrix(&items).unwrap(),
                None,
                3,
                false,
                1e-6,
                30.0,
            )
            .unwrap();
        assert_eq!(ok.loss.to_bits(), exact.loss.to_bits());
    }

    #[test]
    fn unsolved_slots_never_serve_stale_decompositions() {
        // A staged slot whose eigen still holds a *previous* dispatch's
        // valid decomposition must not finish: skipping `solve_all` (or
        // staging after it) has to fail closed, not combine fresh inputs
        // with a stale spectrum.
        use crate::batch::DppBatchArena;
        let m = 6;
        let kernel = example_kernel(12, 8);
        let items: Vec<usize> = (0..m).collect();
        let scores = example_scores(m);
        let mut ws = DppWorkspace::new();
        let mut arena = DppBatchArena::new();
        // Dispatch 1: full stage → solve → finish cycle succeeds.
        arena.begin(1);
        kernel
            .submatrix_into(&items, &mut arena.slot_mut(0).k_sub)
            .unwrap();
        ws.stage_slot(arena.slot_mut(0), &scores, 3, false, false, 1e-6, 30.0);
        assert_eq!(arena.solve_all(), 0);
        assert!(ws.finish_slot(arena.slot(0), false, 1e-6).is_some());
        // Dispatch 2: stage only — the slot's eigen is still dispatch 1's
        // valid decomposition, but finish must refuse without a solve.
        arena.begin(1);
        kernel
            .submatrix_into(&items, &mut arena.slot_mut(0).k_sub)
            .unwrap();
        let drifted: Vec<f64> = scores.iter().map(|s| s + 0.5).collect();
        ws.stage_slot(arena.slot_mut(0), &drifted, 3, false, false, 1e-6, 30.0);
        assert!(
            ws.finish_slot(arena.slot(0), false, 1e-6).is_none(),
            "staged-but-unsolved slot must fail closed"
        );
        // After the solve it finishes, and matches the inline pipeline.
        assert_eq!(arena.solve_all(), 0);
        let res = ws.finish_slot(arena.slot(0), false, 1e-6).unwrap();
        let mut ws_ref = DppWorkspace::new();
        let exact = ws_ref
            .tailored_loss_grad(
                &drifted,
                &kernel.submatrix(&items).unwrap(),
                None,
                3,
                false,
                1e-6,
                30.0,
            )
            .unwrap();
        assert_eq!(res.loss.to_bits(), exact.loss.to_bits());
    }

    #[test]
    fn degenerate_kernel_returns_none() {
        let m = 4;
        let k_sub = Matrix::zeros(m, m);
        let mut ws = DppWorkspace::new();
        // Zero kernel and zero jitter: Z_k = 0 for k ≥ 1.
        assert!(ws
            .tailored_loss_grad(&example_scores(m), &k_sub, None, 2, false, 0.0, 30.0)
            .is_none());
    }
}
