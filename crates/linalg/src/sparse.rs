//! Compressed sparse row (CSR) matrices.
//!
//! The graph-based recommenders (GCN, GCMC) propagate embeddings over the
//! user–item bipartite interaction graph. That graph is stored here as a CSR
//! matrix, and propagation is a sparse × dense product.

use crate::{LinalgError, Matrix, Result};

/// A sparse matrix in compressed sparse row format.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate coordinates are summed. Out-of-bounds coordinates are an
    /// error.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self> {
        for &(r, c, _) in triplets {
            if r >= rows {
                return Err(LinalgError::IndexOutOfBounds {
                    index: r,
                    bound: rows,
                });
            }
            if c >= cols {
                return Err(LinalgError::IndexOutOfBounds {
                    index: c,
                    bound: cols,
                });
            }
        }
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        for &(r, c, v) in &sorted {
            if let (Some(&last_c), Some(last_v)) = (col_idx.last(), values.last_mut()) {
                // Merge duplicates within the current row.
                if row_ptr[r + 1] > 0 && last_c == c && col_idx.len() > row_ptr[r] {
                    // Only merge when the previous entry belongs to the same row:
                    // `row_ptr[r+1] > 0` means we've already placed entries for row r.
                    *last_v += v;
                    continue;
                }
            }
            col_idx.push(c);
            values.push(v);
            row_ptr[r + 1] = col_idx.len();
        }
        // Make row_ptr cumulative for rows without entries.
        for r in 1..=rows {
            if row_ptr[r] < row_ptr[r - 1] {
                row_ptr[r] = row_ptr[r - 1];
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structural) non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates `(col, value)` pairs of row `r`.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Dense sparse × dense product `self * dense`.
    pub fn spmm(&self, dense: &Matrix) -> Result<Matrix> {
        if self.cols != dense.rows() {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.cols, dense.cols()),
                got: dense.shape(),
            });
        }
        let d = dense.cols();
        let mut out = Matrix::zeros(self.rows, d);
        for r in 0..self.rows {
            let out_row = out.row_mut(r);
            for idx in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[idx];
                let v = self.values[idx];
                crate::ops::axpy(v, dense.row(c), out_row);
            }
        }
        Ok(out)
    }

    /// Sparse × dense-vector product.
    pub fn spmv(&self, x: &[f64]) -> Result<Vec<f64>> {
        if self.cols != x.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.cols, 1),
                got: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            *o = self.row_iter(r).map(|(c, v)| v * x[c]).sum();
        }
        Ok(out)
    }

    /// Returns the transpose (also CSR).
    pub fn transpose(&self) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                triplets.push((c, r, v));
            }
        }
        CsrMatrix::from_triplets(self.cols, self.rows, &triplets)
            .expect("transpose of a valid CSR is valid")
    }

    /// Densifies; intended for tests and tiny matrices only.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                m[(r, c)] += v;
            }
        }
        m
    }
}

/// Builds the symmetric-normalized adjacency `Â = D^{-1/2} A D^{-1/2}` of the
/// user–item bipartite graph, with node ordering `[users..., items...]`.
///
/// `edges` are `(user, item)` interaction pairs. Degenerate nodes (degree 0)
/// simply produce empty rows. This is the propagation operator of LightGCN /
/// NGCF-style recommenders.
pub fn normalized_bipartite_adjacency(
    n_users: usize,
    n_items: usize,
    edges: &[(usize, usize)],
) -> Result<CsrMatrix> {
    let n = n_users + n_items;
    let mut degree = vec![0usize; n];
    for &(u, i) in edges {
        if u >= n_users {
            return Err(LinalgError::IndexOutOfBounds {
                index: u,
                bound: n_users,
            });
        }
        if i >= n_items {
            return Err(LinalgError::IndexOutOfBounds {
                index: i,
                bound: n_items,
            });
        }
        degree[u] += 1;
        degree[n_users + i] += 1;
    }
    let inv_sqrt: Vec<f64> = degree
        .iter()
        .map(|&d| if d == 0 { 0.0 } else { 1.0 / (d as f64).sqrt() })
        .collect();
    let mut triplets = Vec::with_capacity(edges.len() * 2);
    for &(u, i) in edges {
        let item_node = n_users + i;
        let w = inv_sqrt[u] * inv_sqrt[item_node];
        triplets.push((u, item_node, w));
        triplets.push((item_node, u, w));
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_triplets_builds_expected_dense() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 1, 2.0), (1, 0, 3.0), (1, 2, -1.0)]).unwrap();
        let d = m.to_dense();
        assert_eq!(d, Matrix::from_rows(&[&[0.0, 2.0, 0.0], &[3.0, 0.0, -1.0]]));
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let m = CsrMatrix::from_triplets(1, 2, &[(0, 1, 2.0), (0, 1, 3.0)]).unwrap();
        assert_eq!(m.to_dense()[(0, 1)], 5.0);
    }

    #[test]
    fn out_of_bounds_triplet_is_error() {
        assert!(CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 2, 1.0)]).is_err());
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let sp = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, -1.0),
                (2, 0, 0.5),
                (2, 2, 3.0),
            ],
        )
        .unwrap();
        let dense = Matrix::from_fn(3, 2, |r, c| (r + c) as f64 + 0.5);
        let got = sp.spmm(&dense).unwrap();
        let expected = sp.to_dense().matmul(&dense).unwrap();
        assert!(got.max_abs_diff(&expected) < 1e-14);
    }

    #[test]
    fn spmv_matches_matvec() {
        let sp = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, -2.0), (1, 1, 4.0)]).unwrap();
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(sp.spmv(&x).unwrap(), sp.to_dense().matvec(&x).unwrap());
    }

    #[test]
    fn transpose_roundtrip() {
        let sp = CsrMatrix::from_triplets(2, 4, &[(0, 3, 1.5), (1, 0, 2.5), (1, 2, -0.5)]).unwrap();
        let tt = sp.transpose().transpose();
        assert!(tt.to_dense().max_abs_diff(&sp.to_dense()) < 1e-15);
    }

    #[test]
    fn empty_rows_are_fine() {
        let sp = CsrMatrix::from_triplets(4, 4, &[(3, 3, 1.0)]).unwrap();
        assert_eq!(sp.row_iter(1).count(), 0);
        assert_eq!(sp.to_dense()[(3, 3)], 1.0);
    }

    #[test]
    fn normalized_adjacency_is_symmetric_with_unit_spectral_bound() {
        // Simple graph: 2 users, 2 items, 3 edges.
        let adj = normalized_bipartite_adjacency(2, 2, &[(0, 0), (0, 1), (1, 1)]).unwrap();
        let d = adj.to_dense();
        assert!(d.is_symmetric(1e-15));
        // The spectral radius of D^{-1/2} A D^{-1/2} is at most 1.
        let eig = crate::eigen::SymmetricEigen::new(&d).unwrap();
        for &l in &eig.values {
            assert!(
                l.abs() <= 1.0 + 1e-12,
                "eigenvalue {l} exceeds spectral bound"
            );
        }
        // user0-item0: 1/sqrt(2*1); user0-item1: 1/sqrt(2*2); user1-item1: 1/sqrt(1*2)
        assert!((d[(0, 2)] - 1.0 / 2.0_f64.sqrt()).abs() < 1e-12);
        assert!((d[(0, 3)] - 0.5).abs() < 1e-12);
        assert!((d[(1, 3)] - 1.0 / 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn isolated_nodes_produce_empty_rows() {
        let adj = normalized_bipartite_adjacency(2, 2, &[(0, 0)]).unwrap();
        assert_eq!(adj.row_iter(1).count(), 0); // user 1 never interacted
        assert_eq!(adj.row_iter(3).count(), 0); // item 1 never interacted
    }
}
