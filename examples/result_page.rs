//! Fixed-size result pages with k-DPPs — the use case that motivates
//! conditioning a DPP on its cardinality (paper Section III-A2: "image
//! search engines that provide a fixed-sized array of results in a page").
//!
//! Builds a quality × diversity kernel over a small catalog, then compares
//! three ways of filling a 6-slot result page:
//!   1. top-k by quality alone,
//!   2. greedy MAP under the DPP kernel (Chen et al. 2018),
//!   3. exact k-DPP sampling (different diverse page on every draw).
//!
//! ```text
//! cargo run --release --example result_page
//! ```

use lkp::linalg::Matrix;
use lkp::prelude::*;
use rand::SeedableRng;

fn main() {
    // A catalog of 30 items in 5 groups; items within a group are highly
    // similar (RBF kernel over synthetic 2-D positions).
    let n = 30;
    let group = |i: usize| i % 5;
    let features = Matrix::from_fn(n, 2, |i, d| {
        let g = group(i) as f64;
        let jitter = ((i * 31 + d * 17) % 10) as f64 * 0.03;
        if d == 0 {
            g + jitter
        } else {
            g * 0.5 + jitter
        }
    });
    let k_matrix = lkp::dpp::lowrank::rbf_kernel(&features, 0.35);

    // Quality: a popularity-skewed score, deliberately concentrated so that
    // the top-k page is monotonous.
    let quality: Vec<f64> = (0..n)
        .map(|i| {
            if group(i) == 0 {
                2.0 - i as f64 * 0.01
            } else {
                1.0 - i as f64 * 0.01
            }
        })
        .collect();
    let kernel = DppKernel::from_quality_diversity(&quality, &k_matrix).expect("PSD kernel");
    let page_size = 6;

    // 1. Pure-quality page.
    let mut by_quality: Vec<usize> = (0..n).collect();
    by_quality.sort_by(|&a, &b| quality[b].partial_cmp(&quality[a]).expect("finite"));
    let top_q = &by_quality[..page_size];
    println!("top-quality page:   {}", render(top_q, group));

    // 2. Greedy MAP page (deterministic, diversity-aware).
    let map = lkp::dpp::map::greedy_map(&kernel, page_size).expect("valid kernel");
    println!("greedy-MAP page:    {}", render(&map.items, group));

    // 3. Sampled k-DPP pages (stochastic, diversity-aware).
    let kdpp = KDpp::new(kernel, page_size).expect("k <= catalog");
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    for draw in 0..3 {
        let page = lkp::dpp::sampling::sample_kdpp(&kdpp, &mut rng).expect("sampling succeeds");
        println!("k-DPP sample #{draw}:    {}", render(&page, group));
    }

    let q_groups = count_groups(top_q, group);
    let m_groups = count_groups(&map.items, group);
    println!("\ngroups covered: top-quality {q_groups}/5, greedy MAP {m_groups}/5");
    println!("MAP and k-DPP pages keep quality high while spanning the catalog's groups.");
}

fn render(items: &[usize], group: impl Fn(usize) -> usize) -> String {
    items
        .iter()
        .map(|&i| format!("item{i:02}[g{}]", group(i)))
        .collect::<Vec<_>>()
        .join(" ")
}

fn count_groups(items: &[usize], group: impl Fn(usize) -> usize) -> usize {
    let mut seen = [false; 5];
    for &i in items {
        seen[group(i)] = true;
    }
    seen.iter().filter(|&&s| s).count()
}
