//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! DPP kernels are PSD by construction, so `log det` of their principal
//! submatrices is computed through Cholesky: it is cheaper and far more
//! numerically informative than LU (a non-positive pivot immediately flags a
//! kernel that lost positive-definiteness to round-off).

use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read. Returns
    /// [`LinalgError::NotPositiveDefinite`] if a pivot is `<= 0` (within a
    /// relative tolerance scaled by the largest diagonal entry).
    pub fn new(a: &Matrix) -> Result<Self> {
        let mut l = Matrix::zeros(0, 0);
        factor_into(a, &mut l)?;
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrow the lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// `log det(A) = 2 · Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Determinant (exponentiated log-det; positive by construction).
    pub fn det(&self) -> f64 {
        self.log_det().exp()
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, 1),
                got: (b.len(), 1),
            });
        }
        // Forward substitution L y = b.
        let mut x = b.to_vec();
        for i in 0..n {
            let mut sum = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                sum -= self.l[(i, j)] * xj;
            }
            x[i] = sum / self.l[(i, i)];
        }
        // Back substitution Lᵀ x = y.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                sum -= self.l[(j, i)] * xj;
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Inverse of the original matrix.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let col = self.solve(&e)?;
            for (r, &v) in col.iter().enumerate() {
                inv[(r, c)] = v;
            }
            e[c] = 0.0;
        }
        Ok(inv)
    }
}

/// Factorizes the SPD matrix `a` into the lower-triangular `l` (`a = l·lᵀ`),
/// reusing `l`'s buffer. The allocation-free core behind [`Cholesky::new`].
pub fn factor_into(a: &Matrix, l: &mut Matrix) -> Result<()> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let max_diag = (0..n).fold(0.0_f64, |m, i| m.max(a[(i, i)].abs()));
    let tol = 1e-14 * max_diag.max(1e-300);
    l.reset(n, n);
    for j in 0..n {
        let mut diag = a[(j, j)];
        for k in 0..j {
            diag -= l[(j, k)] * l[(j, k)];
        }
        if diag <= tol {
            return Err(LinalgError::NotPositiveDefinite {
                pivot: diag,
                index: j,
            });
        }
        let ljj = diag.sqrt();
        l[(j, j)] = ljj;
        for i in (j + 1)..n {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = sum / ljj;
        }
    }
    Ok(())
}

/// `log det(A)` from a factor produced by [`factor_into`].
pub fn log_det_from_factor(l: &Matrix) -> f64 {
    (0..l.rows()).map(|i| l[(i, i)].ln()).sum::<f64>() * 2.0
}

/// Inverse of the factored matrix written into `out`, using `col` as the
/// per-column substitution scratch. Allocation-free once buffers are sized.
pub fn inverse_from_factor(l: &Matrix, out: &mut Matrix, col: &mut Vec<f64>) {
    let n = l.rows();
    out.reset(n, n);
    for c in 0..n {
        col.clear();
        col.resize(n, 0.0);
        col[c] = 1.0;
        // Forward substitution L y = e_c.
        for i in 0..n {
            let mut sum = col[i];
            for j in 0..i {
                sum -= l[(i, j)] * col[j];
            }
            col[i] = sum / l[(i, i)];
        }
        // Back substitution Lᵀ x = y.
        for i in (0..n).rev() {
            let mut sum = col[i];
            for j in (i + 1)..n {
                sum -= l[(j, i)] * col[j];
            }
            col[i] = sum / l[(i, i)];
        }
        for (r, &v) in col.iter().enumerate() {
            out[(r, c)] = v;
        }
    }
}

/// `log det` of an SPD matrix, or an error when it is not positive definite.
pub fn log_det_spd(a: &Matrix) -> Result<f64> {
    Ok(Cholesky::new(a)?.log_det())
}

/// `log det(A + eps·I)`: the jitter makes near-singular PSD matrices usable.
///
/// This is the form used throughout kernel learning (Eq. 3 of the paper),
/// where low-rank `K = VᵀV` submatrices can be rank-deficient.
pub fn log_det_jittered(a: &Matrix, eps: f64) -> Result<f64> {
    let n = a.rows();
    let mut aj = a.clone();
    for i in 0..n {
        aj[(i, i)] += eps;
    }
    log_det_spd(&aj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu;

    fn spd_example() -> Matrix {
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.5], &[0.6, 1.5, 3.0]])
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd_example();
        let ch = Cholesky::new(&a).unwrap();
        let l = ch.factor();
        let rec = l.matmul(&l.transpose()).unwrap();
        assert!(rec.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn log_det_matches_lu_det() {
        let a = spd_example();
        let ch = Cholesky::new(&a).unwrap();
        let d = lu::det(&a).unwrap();
        assert!((ch.log_det() - d.ln()).abs() < 1e-10);
    }

    #[test]
    fn solve_matches_known_solution() {
        let a = spd_example();
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_matches_lu_inverse() {
        let a = spd_example();
        let inv_ch = Cholesky::new(&a).unwrap().inverse().unwrap();
        let inv_lu = lu::inverse(&a).unwrap();
        assert!(inv_ch.max_abs_diff(&inv_lu) < 1e-10);
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn jitter_rescues_singular_psd() {
        // Rank-1 PSD matrix: plain Cholesky fails, jittered succeeds.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(log_det_spd(&a).is_err());
        let ld = log_det_jittered(&a, 1e-6).unwrap();
        // det(A + eps I) = (1+eps)^2 - 1 ~ 2 eps.
        assert!((ld - (2.0 * 1e-6 + 1e-12_f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn empty_matrix_has_log_det_zero() {
        let a = Matrix::zeros(0, 0);
        assert_eq!(Cholesky::new(&a).unwrap().log_det(), 0.0);
    }
}
