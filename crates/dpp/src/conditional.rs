//! Conditional DPPs (Kulesza & Taskar §2.4.3).
//!
//! Recommendation systems routinely need DPPs conditioned on context: "the
//! user already has these items in the basket" (inclusion) or "these items
//! are out of stock" (exclusion). Both operations return a new L-ensemble
//! over the remaining items:
//!
//! * **Exclusion** of a set `B`: the conditional kernel is simply the
//!   principal submatrix `L_{B̄}` on the complement.
//! * **Inclusion** of a set `A`: the conditional kernel on the complement is
//!   `L^A = ( [ (L + I_{Ā})⁻¹ ]_{Ā} )⁻¹ − I`, where `I_{Ā}` is the identity
//!   restricted to the complement's coordinates.
//!
//! The inclusion formula is exact: for any `C ⊆ Ā`,
//! `P(Y = A ∪ C │ A ⊆ Y) = det(L^A_C) / det(L^A + I)`.

use crate::{DppError, DppKernel, Result};

/// Result of conditioning: the new kernel plus the surviving item ids (in
/// ascending order) so callers can map conditional indices back to the
/// original ground set.
#[derive(Debug, Clone)]
pub struct ConditionedDpp {
    /// L-ensemble over the remaining items.
    pub kernel: DppKernel,
    /// Original ids of the remaining items; `kernel` index `i` corresponds
    /// to original item `remaining[i]`.
    pub remaining: Vec<usize>,
}

/// Conditions a DPP on the **exclusion** of `excluded`.
pub fn condition_on_exclusion(kernel: &DppKernel, excluded: &[usize]) -> Result<ConditionedDpp> {
    let m = kernel.size();
    for &i in excluded {
        if i >= m {
            return Err(DppError::IndexOutOfBounds {
                index: i,
                ground_size: m,
            });
        }
    }
    let remaining: Vec<usize> = (0..m).filter(|i| !excluded.contains(i)).collect();
    let sub = kernel.matrix().principal_submatrix(&remaining)?;
    Ok(ConditionedDpp {
        kernel: DppKernel::new(sub)?,
        remaining,
    })
}

/// Conditions a DPP on the **inclusion** of `included`.
///
/// Fails with [`DppError::DegenerateKernel`] when the included set itself has
/// zero probability (`det(L_A) = 0`), in which case the conditional law does
/// not exist.
pub fn condition_on_inclusion(kernel: &DppKernel, included: &[usize]) -> Result<ConditionedDpp> {
    let m = kernel.size();
    for &i in included {
        if i >= m {
            return Err(DppError::IndexOutOfBounds {
                index: i,
                ground_size: m,
            });
        }
    }
    if !kernel.log_det_subset(included)?.is_finite() {
        return Err(DppError::DegenerateKernel);
    }
    let remaining: Vec<usize> = (0..m).filter(|i| !included.contains(i)).collect();

    // L + I_Ā: add 1 to the diagonal on complement coordinates only.
    let mut shifted = kernel.matrix().clone();
    for &i in &remaining {
        shifted[(i, i)] += 1.0;
    }
    let inv = lkp_linalg::lu::inverse(&shifted).map_err(DppError::from)?;
    let inv_sub = inv.principal_submatrix(&remaining)?;
    let mut cond = lkp_linalg::lu::inverse(&inv_sub).map_err(DppError::from)?;
    for i in 0..cond.rows() {
        cond[(i, i)] -= 1.0;
    }
    // Round-off can leave tiny asymmetry/negative eigenvalues; symmetrize and
    // clamp so downstream k-DPP machinery stays healthy.
    let kernel = DppKernel::new(cond)?.project_psd()?;
    Ok(ConditionedDpp { kernel, remaining })
}

/// Marginal probability that `item` appears in a standard-DPP draw given the
/// inclusion of `included` — a convenience built on [`condition_on_inclusion`].
pub fn inclusion_conditional_marginal(
    kernel: &DppKernel,
    included: &[usize],
    item: usize,
) -> Result<f64> {
    if included.contains(&item) {
        return Ok(1.0);
    }
    let cond = condition_on_inclusion(kernel, included)?;
    let pos = cond
        .remaining
        .iter()
        .position(|&i| i == item)
        .ok_or(DppError::IndexOutOfBounds {
            index: item,
            ground_size: kernel.size(),
        })?;
    // Marginal kernel of the conditional ensemble: K = L(L+I)⁻¹; its diagonal
    // entries are the singleton marginals.
    let eig = cond.kernel.eigen()?;
    let marginal = eig.reconstruct_with(|_, l| {
        let l = l.max(0.0);
        l / (1.0 + l)
    });
    Ok(marginal[(pos, pos)].clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate_subsets;
    use lkp_linalg::Matrix;

    fn example_kernel(n: usize) -> DppKernel {
        let v = Matrix::from_fn(n, n, |r, c| (((r * 7 + c * 3) % 9) as f64) * 0.25 - 0.9);
        let mut g = v.gram();
        for i in 0..n {
            g[(i, i)] += 0.4;
        }
        DppKernel::new(g).unwrap()
    }

    /// Brute-force conditional probability P(Y = A ∪ C | A ⊆ Y) from the
    /// joint standard-DPP law.
    fn brute_conditional(kernel: &DppKernel, included: &[usize], extra: &[usize]) -> f64 {
        let m = kernel.size();
        let target: Vec<usize> = {
            let mut t: Vec<usize> = included.iter().chain(extra).copied().collect();
            t.sort_unstable();
            t
        };
        let mut num = 0.0;
        let mut den = 0.0;
        for k in 0..=m {
            for s in enumerate_subsets(m, k) {
                if included.iter().all(|i| s.contains(i)) {
                    let p = kernel.standard_dpp_log_prob(&s).unwrap().exp();
                    den += p;
                    if s == target {
                        num = p;
                    }
                }
            }
        }
        num / den
    }

    #[test]
    fn exclusion_matches_brute_force_renormalization() {
        let kernel = example_kernel(5);
        let cond = condition_on_exclusion(&kernel, &[1, 3]).unwrap();
        assert_eq!(cond.remaining, vec![0, 2, 4]);
        // Conditional law on exclusion is the L-ensemble of the submatrix:
        // P(Y = C | Y ∩ {1,3} = ∅) = det(L_C)/det(L_{B̄} + I).
        let mut den = 0.0;
        let mut p_c = 0.0;
        let target = vec![0, 4];
        for k in 0..=5 {
            for s in enumerate_subsets(5, k) {
                if !s.contains(&1) && !s.contains(&3) {
                    let p = kernel.standard_dpp_log_prob(&s).unwrap().exp();
                    den += p;
                    if s == target {
                        p_c = p;
                    }
                }
            }
        }
        let brute = p_c / den;
        // Map target to conditional indices: items 0,4 -> positions 0,2.
        let got = cond.kernel.standard_dpp_log_prob(&[0, 2]).unwrap().exp();
        assert!((got - brute).abs() < 1e-9, "{got} vs {brute}");
    }

    #[test]
    fn inclusion_matches_brute_force_conditional() {
        let kernel = example_kernel(5);
        let included = vec![2];
        let cond = condition_on_inclusion(&kernel, &included).unwrap();
        assert_eq!(cond.remaining, vec![0, 1, 3, 4]);
        for extra_original in [vec![], vec![0usize], vec![0, 4], vec![1, 3, 4]] {
            let brute = brute_conditional(&kernel, &included, &extra_original);
            // Map original extra ids to conditional positions.
            let extra_cond: Vec<usize> = extra_original
                .iter()
                .map(|i| cond.remaining.iter().position(|r| r == i).unwrap())
                .collect();
            let mut sorted = extra_cond.clone();
            sorted.sort_unstable();
            let got = cond.kernel.standard_dpp_log_prob(&sorted).unwrap().exp();
            assert!(
                (got - brute).abs() < 1e-8,
                "extra {extra_original:?}: {got} vs {brute}"
            );
        }
    }

    #[test]
    fn inclusion_of_two_items_matches_brute_force() {
        let kernel = example_kernel(5);
        let included = vec![0, 3];
        let cond = condition_on_inclusion(&kernel, &included).unwrap();
        let brute = brute_conditional(&kernel, &included, &[2]);
        let pos = cond.remaining.iter().position(|&r| r == 2).unwrap();
        let got = cond.kernel.standard_dpp_log_prob(&[pos]).unwrap().exp();
        assert!((got - brute).abs() < 1e-8, "{got} vs {brute}");
    }

    #[test]
    fn conditional_marginal_matches_enumeration() {
        let kernel = example_kernel(5);
        let included = vec![1];
        for item in [0usize, 2, 4] {
            let fast = inclusion_conditional_marginal(&kernel, &included, item).unwrap();
            // Brute force: Σ P(Y = S | 1 ∈ Y) over S containing item.
            let mut num = 0.0;
            let mut den = 0.0;
            for k in 0..=5 {
                for s in enumerate_subsets(5, k) {
                    if s.contains(&1) {
                        let p = kernel.standard_dpp_log_prob(&s).unwrap().exp();
                        den += p;
                        if s.contains(&item) {
                            num += p;
                        }
                    }
                }
            }
            let brute = num / den;
            assert!(
                (fast - brute).abs() < 1e-8,
                "item {item}: {fast} vs {brute}"
            );
        }
    }

    #[test]
    fn included_item_has_marginal_one() {
        let kernel = example_kernel(4);
        let p = inclusion_conditional_marginal(&kernel, &[2], 2).unwrap();
        assert_eq!(p, 1.0);
    }

    #[test]
    fn zero_probability_inclusion_is_rejected() {
        // Rank-1 kernel: any 2-set has det 0, so conditioning on both items
        // is impossible.
        let v = Matrix::from_fn(1, 3, |_, c| (c + 1) as f64);
        let kernel = DppKernel::new(v.gram()).unwrap();
        assert!(matches!(
            condition_on_inclusion(&kernel, &[0, 1]),
            Err(DppError::DegenerateKernel)
        ));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let kernel = example_kernel(3);
        assert!(condition_on_exclusion(&kernel, &[9]).is_err());
        assert!(condition_on_inclusion(&kernel, &[9]).is_err());
    }
}
