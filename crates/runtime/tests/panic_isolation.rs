//! Regression gate for the pool's panic path: a panicking job must leave
//! the condvar barrier usable (the very next dispatch runs on every
//! worker), must not corrupt per-worker state, and must surface the
//! original panic payload to the caller instead of a generic "worker
//! panicked" message.

use lkp_runtime::WorkerPool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f` with the default panic hook silenced so the intentional panics
/// in these tests don't spam the harness output with backtraces. The hook
/// is process-global, so concurrent tests serialize on a lock.
fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(hook);
    out
}

fn payload_text(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string payload>")
}

#[test]
fn panicking_job_surfaces_payload_and_leaves_barrier_usable() {
    quiet_panics(|| {
        for threads in [1usize, 2, 4] {
            let mut pool = WorkerPool::new(threads);
            // Panic on the highest worker index so at width 1 the caller
            // itself panics and at widths 2/4 a spawned worker does — both
            // payload paths are exercised.
            let bad = threads - 1;
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.run(|w, _| {
                    if w == bad {
                        panic!("injected fault on worker {w}");
                    }
                });
            }));
            let payload = result.expect_err("the injected panic must propagate");
            assert_eq!(
                payload_text(payload.as_ref()),
                format!("injected fault on worker {bad}"),
                "threads={threads}: original payload must cross the pool boundary"
            );

            // The barrier is intact: the next dispatch reaches every worker.
            let count = AtomicUsize::new(0);
            pool.run(|_, _| {
                count.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(
                count.load(Ordering::SeqCst),
                threads,
                "threads={threads}: dispatch after a panic must cover all workers"
            );
        }
    });
}

#[test]
fn worker_state_survives_a_panicking_dispatch() {
    quiet_panics(|| {
        for threads in [1usize, 2, 4] {
            let mut pool = WorkerPool::new(threads);
            pool.run(|_, state| {
                *state.get_or_default::<usize>() = 41;
            });
            let _ = catch_unwind(AssertUnwindSafe(|| {
                pool.run(|_, state| {
                    *state.get_or_default::<usize>() += 1;
                    panic!("boom after mutating state");
                });
            }));
            let seen = std::sync::Mutex::new(Vec::new());
            pool.run(|_, state| {
                seen.lock().unwrap().push(*state.get_or_default::<usize>());
            });
            let seen = seen.into_inner().unwrap();
            assert_eq!(
                seen,
                vec![42usize; threads],
                "threads={threads}: state mutated before the panic must persist"
            );
        }
    });
}

#[test]
fn caller_payload_takes_precedence_over_worker_payload() {
    quiet_panics(|| {
        let mut pool = WorkerPool::new(3);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|w, _| match w {
                0 => panic!("caller fault"),
                _ => panic!("worker fault"),
            });
        }));
        let payload = result.expect_err("everyone panicked");
        assert_eq!(
            payload_text(payload.as_ref()),
            "caller fault",
            "the caller's own payload must win when both sides panic"
        );
        // And the pool still works.
        let count = AtomicUsize::new(0);
        pool.run(|_, _| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 3);
    });
}
