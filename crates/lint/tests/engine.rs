//! Proves each lint is live: fixture files with seeded violations must
//! produce findings at exactly the expected `file:line`, the lexer-noise
//! fixture (every token hidden in strings/comments) must produce none, and
//! malformed suppressions must both survive as findings and suppress
//! nothing.
//!
//! Fixtures live under `tests/fixtures/` (not compiled as test targets, and
//! excluded from the production walk by `excluded_dirs`); each is linted
//! under a *pretend* workspace path that turns the relevant rules on.

use lkp_lint::{lint_source, Finding, Lint, LintConfig};

fn lines_of(findings: &[Finding], lint: Lint) -> Vec<usize> {
    findings
        .iter()
        .filter(|f| f.lint == lint)
        .map(|f| f.line)
        .collect()
}

fn assert_only(findings: &[Finding], lint: Lint) {
    let other: Vec<_> = findings.iter().filter(|f| f.lint != lint).collect();
    assert!(other.is_empty(), "unexpected extra findings: {other:?}");
}

#[test]
fn l1_hotpath_alloc_fires_on_every_alloc_token() {
    let findings = lint_source(
        "crates/dpp/src/workspace.rs",
        include_str!("fixtures/l1_hotpath.rs"),
        &LintConfig::repo_default(),
    );
    assert_eq!(
        lines_of(&findings, Lint::HotpathAlloc),
        vec![6, 14, 18, 22, 26, 30, 34],
        "findings: {findings:?}"
    );
    assert_only(&findings, Lint::HotpathAlloc);
}

#[test]
fn l1_is_scoped_to_hot_path_modules() {
    let findings = lint_source(
        "crates/serve/src/frontend/driver.rs",
        include_str!("fixtures/l1_hotpath.rs"),
        &LintConfig::repo_default(),
    );
    assert!(
        lines_of(&findings, Lint::HotpathAlloc).is_empty(),
        "L1 must not apply outside the configured modules: {findings:?}"
    );
}

#[test]
fn l2_lock_scope_fires_under_live_guards_only() {
    let findings = lint_source(
        "crates/runtime/src/fixture.rs",
        include_str!("fixtures/l2_lock.rs"),
        &LintConfig::repo_default(),
    );
    assert_eq!(
        lines_of(&findings, Lint::LockScope),
        vec![22, 30],
        "findings: {findings:?}"
    );
    assert_only(&findings, Lint::LockScope);
}

#[test]
fn l3_determinism_fires_on_clocks_and_hash_iteration() {
    let findings = lint_source(
        "crates/eval/src/fixture.rs",
        include_str!("fixtures/l3_determinism.rs"),
        &LintConfig::repo_default(),
    );
    assert_eq!(
        lines_of(&findings, Lint::Determinism),
        vec![5, 13, 17, 18, 23, 31, 36],
        "findings: {findings:?}"
    );
    assert_only(&findings, Lint::Determinism);
}

#[test]
fn l4_unsafe_audit_fires_everywhere_including_tests() {
    let findings = lint_source(
        "crates/serve/tests/fixture.rs", // outside every L1–L3 module list
        include_str!("fixtures/l4_unsafe.rs"),
        &LintConfig::repo_default(),
    );
    assert_eq!(
        lines_of(&findings, Lint::UnsafeAudit),
        vec![5, 9, 34, 43],
        "findings: {findings:?}"
    );
    assert_only(&findings, Lint::UnsafeAudit);
}

#[test]
fn lexer_noise_produces_zero_findings() {
    // Linted as a module where L1, L2, AND L3 all apply: every token in the
    // fixture sits inside a string or comment, so nothing may fire.
    let findings = lint_source(
        "crates/dpp/src/map.rs",
        include_str!("fixtures/lexer_noise.rs"),
        &LintConfig::repo_default(),
    );
    assert!(findings.is_empty(), "findings: {findings:?}");
}

#[test]
fn suppressions_silence_findings_and_malformed_ones_are_findings() {
    let findings = lint_source(
        "crates/dpp/src/workspace.rs",
        include_str!("fixtures/suppressions.rs"),
        &LintConfig::repo_default(),
    );
    // Valid allows (trailing at line 6, above-with-continuation at 10–12)
    // silence their sites; bare/typo'd/non-adjacent ones do not.
    assert_eq!(
        lines_of(&findings, Lint::HotpathAlloc),
        vec![17, 22, 28],
        "findings: {findings:?}"
    );
    assert_eq!(
        lines_of(&findings, Lint::BadAllow),
        vec![16, 21],
        "findings: {findings:?}"
    );
}

#[test]
fn tree_walk_skips_fixture_directories() {
    // The production walk must never lint these seeded-violation files.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let (findings, scanned) = lkp_lint::lint_tree(&root, &LintConfig::repo_default());
    assert!(scanned > 0, "walk found no files");
    assert!(
        findings.iter().all(|f| !f.path.contains("fixtures/")),
        "fixture file leaked into the walk: {findings:?}"
    );
}
