//! Failure-injection tests: the training stack must stay healthy when a
//! model misbehaves (extreme scores, NaN-free guarantees) and when kernels
//! degenerate, rather than poisoning parameters or panicking.

use lkp::prelude::*;
use lkp_linalg::Matrix;
use rand::SeedableRng;

fn dataset() -> Dataset {
    SyntheticConfig {
        n_users: 30,
        n_items: 80,
        n_categories: 6,
        mean_interactions: 16.0,
        seed: 3,
        ..Default::default()
    }
    .generate()
}

/// A model that emits huge scores — exp(score) would overflow without the
/// clamp in `lkp_core::objective::quality`.
#[derive(Clone)]
struct ExtremeModel {
    inner: MatrixFactorization,
    scale: f64,
}

impl Recommender for ExtremeModel {
    fn n_users(&self) -> usize {
        self.inner.n_users()
    }
    fn n_items(&self) -> usize {
        self.inner.n_items()
    }
    fn score_items(&self, user: usize, items: &[usize]) -> Vec<f64> {
        self.inner
            .score_items(user, items)
            .into_iter()
            .map(|s| s * self.scale)
            .collect()
    }
    fn accumulate_score_grads(&mut self, user: usize, items: &[usize], dscores: &[f64]) {
        self.inner.accumulate_score_grads(user, items, dscores);
    }
    fn step(&mut self) {
        self.inner.step();
    }
}

#[test]
fn training_survives_score_explosions() {
    let data = dataset();
    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 2,
            pairs_per_epoch: 32,
            dim: 6,
            ..Default::default()
        },
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let inner = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        8,
        AdamConfig::default(),
        &mut rng,
    );
    let mut model = ExtremeModel { inner, scale: 1e6 };
    let mut objective = LkpObjective::new(LkpKind::NegativeAware, kernel);
    let report = Trainer::new(TrainConfig {
        epochs: 2,
        eval_every: 0,
        patience: 0,
        k: 3,
        n: 3,
        ..Default::default()
    })
    .fit(&mut model, &mut objective, &data);
    // Losses must be finite (degenerate instances are skipped at zero loss,
    // never NaN), and the inner parameters must remain finite.
    for stat in &report.history {
        assert!(
            stat.mean_loss.is_finite(),
            "loss went non-finite: {}",
            stat.mean_loss
        );
    }
    let scores = model.score_items(0, &[0, 1, 2]);
    assert!(scores.iter().all(|s| s.is_finite()));
}

#[test]
fn rank_one_diversity_kernel_does_not_poison_training() {
    // A rank-1 kernel makes every K_T singular; the jitter keeps the k-DPP
    // alive and training must proceed with finite losses.
    let data = dataset();
    let rank_one = LowRankKernel::new(Matrix::filled(data.n_items(), 1, 1.0));
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        8,
        AdamConfig::default(),
        &mut rng,
    );
    let mut objective = LkpObjective::new(LkpKind::PositiveOnly, rank_one);
    let report = Trainer::new(TrainConfig {
        epochs: 3,
        eval_every: 0,
        patience: 0,
        k: 3,
        n: 3,
        ..Default::default()
    })
    .fit(&mut model, &mut objective, &data);
    assert!(report.history.iter().all(|e| e.mean_loss.is_finite()));
}

#[test]
fn kdpp_rejects_rather_than_panics_on_degenerate_input() {
    use lkp::dpp::{DppError, DppKernel, KDpp};
    // All-zero kernel.
    let zero = DppKernel::new(Matrix::zeros(4, 4)).unwrap();
    assert!(matches!(
        KDpp::new(zero, 2),
        Err(DppError::DegenerateKernel)
    ));
    // k beyond the ground set.
    let id = DppKernel::new(Matrix::identity(3)).unwrap();
    assert!(matches!(
        KDpp::new(id, 9),
        Err(DppError::CardinalityTooLarge { .. })
    ));
}

#[test]
fn evaluation_handles_models_with_constant_scores() {
    // Ties everywhere: metrics must still be well-defined and bounded.
    #[derive(Clone)]
    struct Constant {
        users: usize,
        items: usize,
    }
    impl Recommender for Constant {
        fn n_users(&self) -> usize {
            self.users
        }
        fn n_items(&self) -> usize {
            self.items
        }
        fn score_items(&self, _: usize, items: &[usize]) -> Vec<f64> {
            vec![0.5; items.len()]
        }
        fn accumulate_score_grads(&mut self, _: usize, _: &[usize], _: &[f64]) {}
        fn step(&mut self) {}
    }
    let data = dataset();
    let model = Constant {
        users: data.n_users(),
        items: data.n_items(),
    };
    let metrics = lkp::eval::evaluate(&model, &data, &[5, 20]);
    for n in [5, 20] {
        let m = metrics.at(n).unwrap();
        assert!(m.ndcg >= 0.0 && m.ndcg <= 1.0);
        assert!(m.category_coverage >= 0.0 && m.category_coverage <= 1.0);
    }
}

#[test]
fn failed_eigendecomposition_invalidates_rather_than_poisons() {
    use lkp_linalg::eigen::{EigenScratch, SymmetricEigen};
    // A NaN on an off-diagonal defeats the QL convergence test: the solver
    // must report NoConvergence AND leave the decomposition invalidated —
    // the documented "unspecified on error" state is now a hard cleared
    // state, so a cached-spectrum consumer can never reuse it.
    let good = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]);
    let mut eig = SymmetricEigen::new(&good).unwrap();
    assert!(eig.is_valid());
    let poisoned = Matrix::from_rows(&[&[1.0, f64::NAN], &[f64::NAN, 1.0]]);
    let mut scratch = EigenScratch::default();
    assert!(eig.compute_into(&poisoned, &mut scratch).is_err());
    assert!(
        !eig.is_valid(),
        "failed compute must clear the stale spectrum"
    );
    assert!(eig.values.is_empty());
    // Warm-start from a poisoned (invalidated) seed degrades to a cold
    // compute instead of consuming garbage.
    let seed = eig.clone();
    let mut fresh = SymmetricEigen::default();
    let used_warm = fresh.compute_warm(&good, &seed, &mut scratch).unwrap();
    assert!(!used_warm, "invalid seed must force the cold path");
    assert!(fresh.is_valid());
}

#[test]
fn spectral_cache_forces_cold_recompute_after_eigen_failure() {
    use lkp::dpp::{DppWorkspace, LowRankKernel, SpectralCache};
    let m = 6;
    let kernel = LowRankKernel::new(Matrix::from_fn(12, 8, |r, c| {
        (((r * 13 + c * 7) % 11) as f64) * 0.2 - 1.0
    }))
    .normalized();
    let items: Vec<usize> = (0..m).collect();
    let scores: Vec<f64> = (0..m).map(|i| (i as f64) * 0.1 - 0.3).collect();

    let mut ws = DppWorkspace::new();
    let mut cache = SpectralCache::new(1e-4, 16);
    let call = |ws: &mut DppWorkspace, cache: &mut SpectralCache, s: &[f64]| {
        kernel.submatrix_into(&items, &mut ws.k_sub).unwrap();
        kernel
            .gather_rows_into(&items, &mut ws.factor_rows)
            .unwrap();
        ws.tailored_loss_grad_cached(cache, 0, &items, s, 3, false, false, 1e-6, 30.0)
    };

    // Healthy visit populates the cache…
    let first = call(&mut ws, &mut cache, &scores).expect("healthy instance");
    assert_eq!(cache.len(), 1);
    // …a NaN-score visit fails the eigen stage (never silently succeeds)
    // and retires the entry…
    assert!(call(&mut ws, &mut cache, &vec![f64::NAN; m]).is_none());
    assert_eq!(cache.len(), 0, "failed spectrum must retire the entry");
    // …and the next healthy visit is a forced cold recompute whose result
    // is bitwise what an uncached workspace produces.
    let recovered = call(&mut ws, &mut cache, &scores).expect("recovered instance");
    assert_eq!(recovered.loss.to_bits(), first.loss.to_bits());
    let stats = cache.stats();
    assert_eq!(stats.cold, 3, "all three visits classified cold");
    assert_eq!(stats.skips + stats.warm_starts, 0);
}

#[test]
fn training_with_spectral_cache_survives_score_explosions() {
    // The ExtremeModel scenario again, but with the spectral cache engaged:
    // degenerate instances must skip (never NaN) and the run must finish
    // with finite parameters even when cached entries get retired mid-epoch.
    let data = dataset();
    let kernel = train_diversity_kernel(
        &data,
        &DiversityKernelConfig {
            epochs: 2,
            pairs_per_epoch: 32,
            dim: 6,
            ..Default::default()
        },
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let inner = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        8,
        AdamConfig::default(),
        &mut rng,
    );
    let mut model = ExtremeModel { inner, scale: 1e6 };
    let mut objective = LkpObjective::new(LkpKind::NegativeAware, kernel);
    let report = Trainer::new(TrainConfig {
        epochs: 2,
        eval_every: 0,
        patience: 0,
        k: 3,
        n: 3,
        spectral_tol: 1e-6,
        ..Default::default()
    })
    .fit(&mut model, &mut objective, &data);
    for stat in &report.history {
        assert!(stat.mean_loss.is_finite());
    }
    let scores = model.score_items(0, &[0, 1, 2]);
    assert!(scores.iter().all(|s| s.is_finite()));
}

#[test]
fn trainer_with_zero_eval_never_checkpoints_but_still_returns() {
    let data = dataset();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut model = MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        8,
        AdamConfig::default(),
        &mut rng,
    );
    let report = Trainer::new(TrainConfig {
        epochs: 2,
        eval_every: 0,
        patience: 5,
        ..Default::default()
    })
    .fit(&mut model, &mut lkp::core::baselines::Bpr, &data);
    assert_eq!(report.best_epoch, 0);
    assert_eq!(report.epochs_run, 2);
}
