//! Admission control and observability: typed submission errors, the
//! fixed-bucket latency histogram, and the frontend's counter block.

use std::time::Duration;

/// Why [`crate::ServeFrontend::try_submit`] refused a request. Admission is
/// decided before a ticket is issued, so a refused request holds no
/// frontend state at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The pending queue is at [`crate::FrontendConfig::queue_capacity`].
    /// Load is arriving faster than the pump drains it; shedding here keeps
    /// queueing delay bounded instead of serving everyone late.
    QueueFull {
        /// The capacity that was hit.
        capacity: usize,
    },
    /// The owning [`crate::FrontendDriver`] is shutting down and no longer
    /// accepts work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "pending queue full (capacity {capacity})")
            }
            SubmitError::ShuttingDown => write!(f, "frontend driver is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Number of log₂ latency buckets: bucket `i` covers `[2^i, 2^{i+1})`
/// nanoseconds, so 40 buckets span 1 ns to ~18 minutes.
pub const LATENCY_BUCKETS: usize = 40;

/// A fixed log₂-bucket latency histogram: recording is an increment into a
/// `[u64; 40]` (no allocation, no sort — safe on the cut path), quantiles
/// are read as the upper bound of the bucket containing the requested rank
/// (an at-most-2× overestimate, which is the right bias for SLO checks).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; LATENCY_BUCKETS],
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; LATENCY_BUCKETS],
            total: 0,
        }
    }
}

impl LatencyHistogram {
    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        let bucket = (63 - ns.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.counts[bucket] += 1;
        self.total += 1;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Raw bucket counts; bucket `i` covers `[2^i, 2^{i+1})` ns (the last
    /// bucket is open-ended).
    pub fn buckets(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.counts
    }

    /// The latency at quantile `q ∈ [0, 1]`, reported as the upper bound of
    /// the bucket holding that rank (zero when nothing was recorded).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Duration::from_nanos(1u64 << (bucket + 1));
            }
        }
        Duration::from_nanos(1u64 << LATENCY_BUCKETS)
    }

    /// Median served latency (bucket upper bound).
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 95th-percentile served latency (bucket upper bound).
    pub fn p95(&self) -> Duration {
        self.quantile(0.95)
    }

    /// 99th-percentile served latency (bucket upper bound).
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("p50", &self.p50())
            .field("p95", &self.p95())
            .field("p99", &self.p99())
            .finish()
    }
}

/// Frontend traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendStats {
    /// Requests accepted ([`crate::ServeFrontend::submit`] +
    /// [`crate::ServeFrontend::try_submit`]).
    pub submitted: u64,
    /// Requests served (moved to completed responses; includes per-request
    /// failures and contained panics — the pipeline processed them).
    pub served: u64,
    /// Micro-batches cut.
    pub batches: u64,
    /// Batches cut because `max_batch` requests were pending.
    pub cuts_full: u64,
    /// Batches cut because the oldest pending deadline was reached
    /// (`max_wait`, or a tighter per-request SLO).
    pub cuts_deadline: u64,
    /// Batches cut by an explicit [`crate::ServeFrontend::flush`].
    pub cuts_flush: u64,
    /// Tickets abandoned via [`crate::ServeFrontend::discard`] (pending
    /// requests dropped before serving plus completed responses dropped
    /// unclaimed).
    pub discarded: u64,
    /// Requests refused at admission ([`SubmitError::QueueFull`]).
    pub shed: u64,
    /// Requests past their SLO at cut time, completed unserved with
    /// [`crate::RankOutcome::Expired`].
    pub expired: u64,
    /// Responses produced with a truncated rerank head (the overload
    /// degraded mode, or a caller-set [`crate::RankRequest::rerank_head`]).
    pub degraded: u64,
    /// Responses with [`crate::RankOutcome::Failed`] (numerical failure
    /// isolated to their own ticket).
    pub failed: u64,
    /// Responses with [`crate::RankOutcome::Panicked`] (request panic
    /// contained to its own ticket).
    pub panicked: u64,
    /// Unclaimed completed responses dropped by the TTL sweep
    /// ([`crate::FrontendConfig::response_ttl`]).
    pub ttl_expired: u64,
    /// Artifact swaps committed ([`crate::ServeFrontend::commit_swap`]).
    pub swaps: u64,
    /// Queue-wait latency of served requests (submit → batch cut), recorded
    /// on the cut path with no allocation.
    pub latency: LatencyHistogram,
}
