//! # lkp — Learning k-Determinantal Point Processes for Personalized Ranking
//!
//! A from-scratch Rust implementation of the LkP optimization criterion
//! (Liu, Walder & Xie, ICDE 2024) together with every substrate it needs:
//! dense/sparse linear algebra, a complete DPP/k-DPP toolkit, implicit-
//! feedback datasets, four recommendation models, a metric suite, and the
//! training loop.
//!
//! ## The idea in one paragraph
//!
//! Classic ranking losses compare *items* (BPR compares one pair, SetRank
//! one item against a set). LkP compares *sets*: each training instance is a
//! user with `k` observed items and `n` sampled unobserved ones, and the
//! model is trained so that — under a k-DPP whose kernel combines the
//! model's relevance scores with a pre-learned diversity kernel
//! (`L = Diag(q)·K·Diag(q)`) — the observed subset out-probabilizes every
//! other size-k subset of that ground set. The fixed-cardinality
//! normalization `Z_k = e_k(λ(L))` is what gives the probabilities a ranking
//! interpretation, and it is computed with the paper's `O((k+n)k)`
//! elementary-symmetric-polynomial recursion.
//!
//! ## Quickstart
//!
//! ```
//! use lkp::prelude::*;
//! use rand::SeedableRng;
//!
//! // 1. Data: a synthetic implicit-feedback dataset with item categories.
//! let data = SyntheticConfig { n_users: 60, n_items: 120, n_categories: 8,
//!                              ..Default::default() }.generate();
//!
//! // 2. Pre-train the diversity kernel (paper Eq. 3).
//! let kernel = train_diversity_kernel(
//!     &data,
//!     &DiversityKernelConfig { epochs: 3, pairs_per_epoch: 32, ..Default::default() },
//! );
//!
//! // 3. Model + LkP objective + trainer.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut model = MatrixFactorization::new(
//!     data.n_users(), data.n_items(), 16, AdamConfig::default(), &mut rng);
//! let mut objective = LkpObjective::new(LkpKind::NegativeAware, kernel);
//! let trainer = Trainer::new(TrainConfig { epochs: 3, ..Default::default() });
//! trainer.fit(&mut model, &mut objective, &data);
//!
//! // 4. Evaluate relevance *and* diversity.
//! let metrics = lkp::eval::evaluate(&model, &data, &[10]);
//! let m = metrics.at(10).unwrap();
//! assert!(m.ndcg >= 0.0 && m.category_coverage >= 0.0);
//! ```
//!
//! ## Crate map
//!
//! | Module | Backing crate | Contents |
//! |---|---|---|
//! | [`linalg`] | `lkp-linalg` | matrices, LU/Cholesky/eigen, CSR |
//! | [`dpp`] | `lkp-dpp` | ESPs, k-DPPs, sampling, greedy MAP, gradients |
//! | [`data`] | `lkp-data` | datasets, synthetic presets, ground-set samplers |
//! | [`nn`] | `lkp-nn` | dense layers, embeddings, Adam |
//! | [`models`] | `lkp-models` | MF, GCN, NeuMF, GCMC |
//! | [`eval`] | `lkp-eval` | Recall/NDCG/CC/F/ILD, parallel evaluation |
//! | [`core`] | `lkp-core` | the LkP criterion, baselines, trainer, probes |
//! | [`runtime`] | `lkp-runtime` | persistent worker pool, per-worker state |
//! | [`serve`] | `lkp-serve` | model snapshots, batched top-N MAP serving |

pub use lkp_core as core;
pub use lkp_data as data;
pub use lkp_dpp as dpp;
pub use lkp_eval as eval;
pub use lkp_linalg as linalg;
pub use lkp_models as models;
pub use lkp_nn as nn;
pub use lkp_runtime as runtime;
pub use lkp_serve as serve;

/// The most common imports in one place.
pub mod prelude {
    pub use lkp_core::baselines::{Bce, Bpr, S2SRank, SetRank};
    pub use lkp_core::objective::{
        InstanceGrad, LkpKind, LkpObjective, LkpRbfObjective, Objective,
    };
    pub use lkp_core::{
        train_diversity_kernel, DiversityKernelConfig, LkpVariant, RefreshReport, TrainConfig,
        TrainReport, TrainedState, Trainer, UpdateRule,
    };
    pub use lkp_data::{
        Dataset, DatasetDelta, DeltaPlanner, DeltaSummary, EpochPlan, EpochPlanner,
        GroundSetInstance, InstanceRef, InstanceSampler, PlanStats, SamplingPolicy, Split,
        SyntheticConfig, SyntheticPreset, TargetSelection,
    };
    pub use lkp_dpp::{DppBatchArena, DppWorkspace};
    pub use lkp_dpp::{
        DppKernel, KDpp, LowRankKernel, SpectralCache, SpectralCacheStats, SpectralSnapshot,
    };
    pub use lkp_models::{Gcmc, Gcn, ItemEmbeddings, MatrixFactorization, NeuMf, Recommender};
    pub use lkp_nn::AdamConfig;
    pub use lkp_runtime::WorkerPool;
    pub use lkp_serve::{
        CacheMode, DriverClient, FrontendConfig, FrontendDriver, KernelForm, RankOutcome,
        RankRequest, RankResponse, Ranker, RankingArtifact, ServeConfig, ServeFrontend,
        ShardPartition, ShardedArtifact, SubmitError,
    };

    /// Convenience: generate a synthetic dataset from its config in one call.
    pub trait GenerateExt {
        /// Runs the synthetic generator.
        fn generate(&self) -> Dataset;
    }

    impl GenerateExt for SyntheticConfig {
        fn generate(&self) -> Dataset {
            lkp_data::synthetic::generate(self)
        }
    }
}
