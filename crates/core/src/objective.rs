//! The LkP objectives (paper Eq. 7 and Eq. 10) and the objective trait all
//! criteria implement.
//!
//! The trait splits per-instance work into two phases:
//!
//! * [`Objective::compute_into`] — **immutable** with respect to both the
//!   objective and the model: reads scores, runs the tailored-k-DPP pipeline
//!   inside a caller-provided [`DppWorkspace`], and writes the instance's
//!   loss and gradients into a reusable [`InstanceGrad`]. Because it takes
//!   `&self`/`&M`, mini-batches parallelize freely across instances.
//!   Instances arrive as borrowed [`InstanceRef`] views, resolved either
//!   from owned [`lkp_data::GroundSetInstance`]s or zero-copy from an
//!   [`lkp_data::EpochPlan`]'s flat arena.
//! * [`Objective::accumulate`] — pushes one computed [`InstanceGrad`] into
//!   the model's parameter gradients. The trainer calls it serially, in
//!   instance order, so batch results are bitwise identical at any thread
//!   count.
//!
//! [`Objective::compute_batch_into`] is the dispatch-level entry point: the
//! trainer hands each uniform-size run of a scheduled batch to it, and
//! criteria whose cost is dominated by the kernel eigendecomposition
//! (the frozen-kernel LkP objectives) override it to stage every instance
//! into a [`DppBatchArena`] and solve the run's eigenproblems back-to-back
//! from one scratch allocation. The default loops [`Objective::compute_into`].
//!
//! [`Objective::apply`] composes compute + accumulate with a scratch
//! workspace for callers that process single instances (tests, probes,
//! examples).

use crate::{KERNEL_JITTER, SCORE_CLAMP};
use lkp_data::{InstanceBlock, InstanceRef};
use lkp_dpp::{DppBatchArena, DppWorkspace, LowRankKernel, SpectralCache};
use lkp_linalg::Matrix;
use lkp_models::{ItemEmbeddings, Recommender};

/// One instance's computed contribution: loss plus every gradient the model
/// needs, in reusable buffers (clear-and-refill; no steady-state allocation).
#[derive(Debug, Clone, Default)]
pub struct InstanceGrad {
    /// The instance's user.
    pub user: usize,
    /// The ground set (targets then negatives).
    pub items: Vec<usize>,
    /// Model scores over `items` (kept for diagnostics and chaining).
    pub scores: Vec<f64>,
    /// `∂loss/∂score` per ground-set item; empty when the instance was
    /// skipped (degenerate kernel) and nothing should be accumulated.
    pub dscores: Vec<f64>,
    /// The instance's loss (0 for skipped instances).
    pub loss: f64,
    /// Items with embedding gradients (E-type objectives), parallel to
    /// `embed_grads` chunks of length `embed_dim`.
    pub embed_items: Vec<usize>,
    /// Flattened `∂loss/∂embedding` rows.
    pub embed_grads: Vec<f64>,
    /// Embedding dimensionality of `embed_grads` rows.
    pub embed_dim: usize,
}

impl InstanceGrad {
    /// Resets the buffers for a new instance (capacity retained).
    pub fn reset_for(&mut self, instance: InstanceRef<'_>) {
        self.user = instance.user;
        self.items.clear();
        self.items.extend_from_slice(instance.positives);
        self.items.extend_from_slice(instance.negatives);
        self.scores.clear();
        self.dscores.clear();
        self.loss = 0.0;
        self.embed_items.clear();
        self.embed_grads.clear();
        self.embed_dim = 0;
    }

    /// Marks the instance skipped (degenerate kernel): zero loss, no grads.
    pub fn mark_skipped(&mut self) {
        self.loss = 0.0;
        self.dscores.clear();
        self.embed_items.clear();
        self.embed_grads.clear();
    }
}

/// A per-instance training criterion.
///
/// Implementors provide the immutable [`Objective::compute_into`]; the
/// default [`Objective::accumulate`] pushes score gradients (override to add
/// embedding gradients), and the default [`Objective::apply`] chains the two
/// for one-off callers. `Sync` is required so the trainer can share the
/// objective across worker threads.
pub trait Objective<M: Recommender>: Sync {
    /// Computes one instance's loss and gradients into `out`, using `ws` as
    /// scratch. Must not mutate shared state: the trainer calls this
    /// concurrently from several threads with per-thread `ws`/`out`.
    fn compute_into(
        &self,
        model: &M,
        instance: InstanceRef<'_>,
        ws: &mut DppWorkspace,
        out: &mut InstanceGrad,
    );

    /// [`Objective::compute_into`] with access to an epoch-persistent
    /// [`SpectralCache`] (one per pool worker). Criteria whose per-instance
    /// cost is dominated by a kernel eigendecomposition override this to
    /// reuse/warm-start cached spectra on revisited ground sets; the default
    /// ignores the cache, so pointwise/pairwise baselines and criteria with
    /// non-cacheable kernels (e.g. trainable-embedding RBF) are unaffected.
    /// The trainer only routes through this entry point when
    /// `TrainConfig::spectral_tol > 0`.
    fn compute_cached_into(
        &self,
        model: &M,
        instance: InstanceRef<'_>,
        ws: &mut DppWorkspace,
        cache: &mut SpectralCache,
        out: &mut InstanceGrad,
    ) {
        let _ = cache;
        self.compute_into(model, instance, ws, out);
    }

    /// Computes a uniform-size run of plan instances into
    /// `outs[..block.len()]` — the dispatch-level entry point the trainer
    /// routes every scheduled run through.
    ///
    /// The default loops [`Objective::compute_into`] and touches neither the
    /// arena nor any batching machinery, so pointwise/pairwise baselines are
    /// unaffected. Criteria dominated by the eigen stage override this to
    /// stage all of the run's kernels into the [`DppBatchArena`] and solve
    /// the eigenproblems back-to-back from the arena's shared scratch
    /// (`lkp_linalg::eigen::compute_batch`). Overrides must produce results
    /// **bitwise identical** to the default loop — batching may reorder
    /// work, never arithmetic.
    fn compute_batch_into(
        &self,
        model: &M,
        block: InstanceBlock<'_>,
        ws: &mut DppWorkspace,
        arena: &mut DppBatchArena,
        outs: &mut [InstanceGrad],
    ) {
        let _ = arena;
        debug_assert_eq!(block.len(), outs.len());
        for (i, out) in outs.iter_mut().enumerate() {
            self.compute_into(model, block.get(i), ws, out);
        }
    }

    /// Accumulates a computed gradient into the model.
    fn accumulate(&self, model: &mut M, grad: &InstanceGrad) {
        if !grad.dscores.is_empty() {
            model.accumulate_score_grads(grad.user, &grad.items, &grad.dscores);
        }
    }

    /// Convenience single-instance path: compute + accumulate with scratch
    /// buffers. Allocates; hot loops should hold their own workspace and use
    /// the two-phase API directly.
    fn apply(&mut self, model: &mut M, instance: InstanceRef<'_>) -> f64 {
        let mut ws = DppWorkspace::new();
        let mut out = InstanceGrad::default();
        self.compute_into(model, instance, &mut ws, &mut out);
        self.accumulate(model, &out);
        out.loss
    }

    /// The `(k, n)` ground-set shape this criterion trains on, given the
    /// experiment's configured shape. Pointwise/pairwise baselines override
    /// this (BPR wants `(1, 1)` regardless of the experiment's `k`).
    fn instance_shape(&self, k: usize, n: usize) -> (usize, usize) {
        (k, n)
    }

    /// Short name for logs and table rows.
    fn name(&self) -> &'static str;
}

/// Which of the two LkP formulations to optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LkpKind {
    /// Eq. 7 — maximize `log P_k(S⁺)` (inclusion of the target subset).
    PositiveOnly,
    /// Eq. 10 — maximize `log P_k(S⁺) + log(1 − P_k(S⁻))` (inclusion of the
    /// target subset and exclusion of the all-negative subset; needs n = k).
    NegativeAware,
}

/// The LkP criterion with the **pre-learned** diversity kernel (paper
/// default). Holds a shared low-rank `K`; per instance it assembles
/// `L = Diag(q)·K_T·Diag(q) + ε·I` with `q = exp(ŷ)` and differentiates the
/// tailored k-DPP log-probability back into the model scores. When the
/// kernel's rank `d` is smaller than the ground set, the spectrum goes
/// through the `d × d` dual Gram instead of the `m × m` kernel.
pub struct LkpObjective {
    kind: LkpKind,
    kernel: LowRankKernel,
}

impl LkpObjective {
    /// Creates the objective. The kernel is row-normalized on entry so its
    /// diagonal is exactly 1 (pure-diversity factor; quality lives in `q`).
    pub fn new(kind: LkpKind, kernel: LowRankKernel) -> Self {
        LkpObjective {
            kind,
            kernel: kernel.normalized(),
        }
    }

    /// Borrow the diversity kernel.
    pub fn kernel(&self) -> &LowRankKernel {
        &self.kernel
    }

    /// The LkP formulation in use.
    pub fn kind(&self) -> LkpKind {
        self.kind
    }

    /// Shared prologue of both compute paths: resets `out`, scores the
    /// ground set, and stages the kernel inputs in the workspace.
    fn stage<M: Recommender>(
        &self,
        model: &M,
        instance: InstanceRef<'_>,
        ws: &mut DppWorkspace,
        out: &mut InstanceGrad,
    ) {
        out.reset_for(instance);
        model.score_items_into(instance.user, &out.items, &mut out.scores);
        self.kernel
            .submatrix_into(&out.items, &mut ws.k_sub)
            .expect("ground items in kernel range");
        self.kernel
            .gather_rows_into(&out.items, &mut ws.factor_rows)
            .expect("ground items in kernel range");
    }

    /// Shared epilogue: copies the workspace result into `out`, or marks the
    /// instance skipped when the kernel degenerated.
    fn collect(ws: &DppWorkspace, result: Option<lkp_dpp::TailoredResult>, out: &mut InstanceGrad) {
        match result {
            Some(result) => {
                out.loss = result.loss;
                out.dscores.extend_from_slice(ws.dscores());
            }
            None => out.mark_skipped(),
        }
    }
}

impl<M: Recommender> Objective<M> for LkpObjective {
    fn compute_into(
        &self,
        model: &M,
        instance: InstanceRef<'_>,
        ws: &mut DppWorkspace,
        out: &mut InstanceGrad,
    ) {
        self.stage(model, instance, ws, out);
        let result = ws.tailored_loss_grad_staged(
            &out.scores,
            instance.k(),
            self.kind == LkpKind::NegativeAware,
            true,
            KERNEL_JITTER,
            SCORE_CLAMP,
        );
        Self::collect(ws, result, out);
    }

    /// The pre-learned kernel is frozen for the whole run, so a ground set's
    /// tailored spectrum depends only on `(items, q)` — exactly what the
    /// spectral cache keys and drift-checks. Revisits within
    /// `cache.tol()` reuse the cached `(λ, V)` outright; drifted revisits
    /// warm-start the eigen solver from it.
    fn compute_cached_into(
        &self,
        model: &M,
        instance: InstanceRef<'_>,
        ws: &mut DppWorkspace,
        cache: &mut SpectralCache,
        out: &mut InstanceGrad,
    ) {
        self.stage(model, instance, ws, out);
        let result = ws.tailored_loss_grad_cached(
            cache,
            instance.user,
            &out.items,
            &out.scores,
            instance.k(),
            self.kind == LkpKind::NegativeAware,
            true,
            KERNEL_JITTER,
            SCORE_CLAMP,
        );
        Self::collect(ws, result, out);
    }

    /// Batched dispatch path: stage every instance's staged kernel into an
    /// arena slot, solve the run's eigenproblems back-to-back from the
    /// arena's shared scratch, then walk the gradient tails. Each phase is a
    /// pure function of its instance's inputs, so the results are bitwise
    /// the default per-instance loop's — the batching only tightens the
    /// eigen stage's inner loop over cold first visits (revisits are the
    /// spectral cache's job, on the `spectral_tol > 0` path).
    fn compute_batch_into(
        &self,
        model: &M,
        block: InstanceBlock<'_>,
        ws: &mut DppWorkspace,
        arena: &mut DppBatchArena,
        outs: &mut [InstanceGrad],
    ) {
        let n = block.len();
        debug_assert_eq!(n, outs.len());
        let negative_aware = self.kind == LkpKind::NegativeAware;
        arena.begin(n);
        for (i, out) in outs.iter_mut().enumerate() {
            let instance = block.get(i);
            out.reset_for(instance);
            model.score_items_into(instance.user, &out.items, &mut out.scores);
            self.kernel
                .gather_rows_into(&out.items, &mut ws.factor_rows)
                .expect("ground items in kernel range");
            let slot = arena.slot_mut(i);
            self.kernel
                .submatrix_into(&out.items, &mut slot.k_sub)
                .expect("ground items in kernel range");
            ws.stage_slot(
                slot,
                &out.scores,
                instance.k(),
                negative_aware,
                true,
                KERNEL_JITTER,
                SCORE_CLAMP,
            );
        }
        arena.solve_all();
        for (i, out) in outs.iter_mut().enumerate() {
            let result = ws.finish_slot(arena.slot(i), negative_aware, KERNEL_JITTER);
            Self::collect(ws, result, out);
        }
    }

    fn name(&self) -> &'static str {
        match self.kind {
            LkpKind::PositiveOnly => "LkP-PS",
            LkpKind::NegativeAware => "LkP-NPS",
        }
    }
}

/// The `E`-type LkP criterion: the diversity factor is an RBF kernel over
/// the model's *trainable* item embeddings, so the gradient additionally
/// flows into the embeddings through the kernel entries (the paper's PSE /
/// NPSE variants).
pub struct LkpRbfObjective {
    kind: LkpKind,
    /// RBF bandwidth σ.
    pub sigma: f64,
}

impl LkpRbfObjective {
    /// Creates the E-type objective with bandwidth `sigma`.
    pub fn new(kind: LkpKind, sigma: f64) -> Self {
        assert!(sigma > 0.0);
        LkpRbfObjective { kind, sigma }
    }
}

impl<M: Recommender + ItemEmbeddings> Objective<M> for LkpRbfObjective {
    fn compute_into(
        &self,
        model: &M,
        instance: InstanceRef<'_>,
        ws: &mut DppWorkspace,
        out: &mut InstanceGrad,
    ) {
        out.reset_for(instance);
        let m = out.items.len();
        model.score_items_into(instance.user, &out.items, &mut out.scores);
        // Assemble the RBF diversity kernel from current item embeddings,
        // staging the feature rows in the workspace's factor buffer (the
        // RBF kernel is full-rank, so the dual path is not offered).
        let dim = model.item_dim();
        ws.factor_rows.reset(m, dim);
        for (row, &item) in out.items.iter().enumerate() {
            ws.factor_rows
                .row_mut(row)
                .copy_from_slice(model.item_embedding(item));
        }
        {
            // Detach feats from `ws` while writing `ws.k_sub` (disjoint
            // staging buffers, but the borrow checker sees one `ws`).
            let feats = std::mem::take(&mut ws.factor_rows);
            lkp_dpp::lowrank::rbf_kernel_into(&feats, self.sigma, &mut ws.k_sub);
            ws.factor_rows = feats;
        }
        let negative_aware = self.kind == LkpKind::NegativeAware;
        let Some(result) = ws.tailored_loss_grad_staged(
            &out.scores,
            instance.k(),
            negative_aware,
            false,
            KERNEL_JITTER,
            SCORE_CLAMP,
        ) else {
            out.mark_skipped();
            return;
        };
        out.loss = result.loss;
        out.dscores.extend_from_slice(ws.dscores());

        // Chain ∂loss/∂L into K entries, then into embeddings:
        // ∂K_ij/∂e_i = K_ij·(e_j − e_i)/σ², and
        // ∂loss/∂K_ij = G_ij·q_i·q_j with G = ∂loss/∂L.
        let g_l = ws.grad_l();
        let q = ws.quality();
        let feats = &ws.factor_rows;
        let k_sub = &ws.k_sub;
        let sigma2 = self.sigma * self.sigma;
        out.embed_dim = dim;
        for i in 0..m {
            out.embed_items.push(out.items[i]);
            let base = out.embed_grads.len();
            out.embed_grads.resize(base + dim, 0.0);
            for j in 0..m {
                if i == j {
                    continue;
                }
                let dk_ij = g_l[(i, j)] * q[i] * q[j];
                let dk_ji = g_l[(j, i)] * q[j] * q[i];
                let coeff = (dk_ij + dk_ji) * k_sub[(i, j)] / sigma2;
                if coeff == 0.0 {
                    continue;
                }
                let fi = feats.row(i);
                let fj = feats.row(j);
                let de = &mut out.embed_grads[base..base + dim];
                for ((slot, &a), &b) in de.iter_mut().zip(fj).zip(fi) {
                    *slot += coeff * (a - b);
                }
            }
        }
    }

    fn accumulate(&self, model: &mut M, grad: &InstanceGrad) {
        if grad.dscores.is_empty() {
            return;
        }
        model.accumulate_score_grads(grad.user, &grad.items, &grad.dscores);
        for (chunk, &item) in grad
            .embed_grads
            .chunks_exact(grad.embed_dim)
            .zip(&grad.embed_items)
        {
            model.accumulate_item_embedding_grad(item, chunk);
        }
    }

    fn name(&self) -> &'static str {
        match self.kind {
            LkpKind::PositiveOnly => "LkP-PSE",
            LkpKind::NegativeAware => "LkP-NPSE",
        }
    }
}

/// Quality vector `q_i = exp(clamp(ŷ_i))` — the positive relevance factor of
/// the kernel decomposition (paper Eq. 13). Public so that diagnostics and
/// case studies can assemble the same kernels the objectives train with.
pub fn quality(scores: &[f64]) -> Vec<f64> {
    scores
        .iter()
        .map(|&s| s.clamp(-SCORE_CLAMP, SCORE_CLAMP).exp())
        .collect()
}

/// Assembles exactly the tailored kernel the objectives train with:
/// `L = Diag(q)·K_T·Diag(q) + ε·I` with `q = quality(scores)` and the
/// workspace's L-space jitter. Diagnostics, probes, and case studies should
/// go through this instead of jittering `K_T` themselves, so their subset
/// probabilities match the training distribution bit for bit.
pub fn tailored_kernel(scores: &[f64], k_sub: &Matrix) -> Option<lkp_dpp::DppKernel> {
    let q = quality(scores);
    let mut l = lkp_dpp::DppKernel::from_quality_diversity(&q, k_sub)
        .ok()?
        .into_matrix();
    for i in 0..l.rows() {
        l[(i, i)] += KERNEL_JITTER;
    }
    lkp_dpp::DppKernel::new(l).ok()
}

/// Test-only re-export of the objective core, so external property tests can
/// exercise the raw `(loss, ∂loss/∂scores, ∂loss/∂L)` computation without a
/// model in the loop.
#[doc(hidden)]
pub fn lkp_core_apply_for_tests(
    kind: LkpKind,
    scores: &[f64],
    k_sub: &Matrix,
    k: usize,
) -> Option<(f64, Vec<f64>, Matrix)> {
    let mut ws = DppWorkspace::new();
    let result = ws.tailored_loss_grad(
        scores,
        k_sub,
        None,
        k,
        kind == LkpKind::NegativeAware,
        KERNEL_JITTER,
        SCORE_CLAMP,
    )?;
    Some((result.loss, ws.dscores().to_vec(), ws.grad_l().clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkp_data::GroundSetInstance;
    use lkp_dpp::{grad, DppKernel, KDpp};
    use lkp_nn::AdamConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn kernel(n_items: usize, dim: usize) -> LowRankKernel {
        let v = Matrix::from_fn(n_items, dim, |r, c| {
            (((r * 13 + c * 7) % 11) as f64) * 0.2 - 1.0
        });
        LowRankKernel::new(v).normalized()
    }

    fn mf(n_users: usize, n_items: usize) -> lkp_models::MatrixFactorization {
        let mut rng = StdRng::seed_from_u64(3);
        lkp_models::MatrixFactorization::new(
            n_users,
            n_items,
            8,
            AdamConfig {
                lr: 0.05,
                weight_decay: 0.0,
                ..Default::default()
            },
            &mut rng,
        )
    }

    fn instance() -> GroundSetInstance {
        GroundSetInstance {
            user: 0,
            positives: vec![0, 1, 2],
            negatives: vec![5, 6, 7],
        }
    }

    /// `lkp_core_apply_for_tests` with the dense path forced — shorthand.
    fn core_apply(
        kind: LkpKind,
        scores: &[f64],
        ksub: &Matrix,
        k: usize,
    ) -> Option<(f64, Vec<f64>, Matrix)> {
        lkp_core_apply_for_tests(kind, scores, ksub, k)
    }

    #[test]
    fn core_apply_loss_is_negative_log_prob() {
        let scores = vec![0.5, 0.2, -0.1, 0.0, -0.3, 0.4];
        let ksub = kernel(6, 4).full_matrix();
        let (loss, _, _) = core_apply(LkpKind::PositiveOnly, &scores, &ksub, 3).unwrap();
        // Recompute directly through the cold path with the same L-space
        // jitter: L = Diag(q)·K·Diag(q) + ε·I.
        let q = quality(&scores);
        let mut l = Matrix::zeros(6, 6);
        for i in 0..6 {
            for j in 0..6 {
                l[(i, j)] = q[i] * ksub[(i, j)] * q[j];
            }
            l[(i, i)] += KERNEL_JITTER;
        }
        let kdpp = KDpp::new(DppKernel::new(l).unwrap(), 3).unwrap();
        let expected = -kdpp.log_prob(&[0, 1, 2]).unwrap();
        assert!((loss - expected).abs() < 1e-10);
    }

    #[test]
    fn score_gradients_match_finite_difference_ps() {
        score_grad_check(LkpKind::PositiveOnly);
    }

    #[test]
    fn score_gradients_match_finite_difference_nps() {
        score_grad_check(LkpKind::NegativeAware);
    }

    fn score_grad_check(kind: LkpKind) {
        let scores = vec![0.4, -0.2, 0.1, 0.3, -0.5, 0.0];
        let ksub = kernel(6, 4).full_matrix();
        let (_, dscores, _) = core_apply(kind, &scores, &ksub, 3).unwrap();
        let h = 1e-6;
        for i in 0..6 {
            let mut plus = scores.clone();
            plus[i] += h;
            let mut minus = scores.clone();
            minus[i] -= h;
            let lp = core_apply(kind, &plus, &ksub, 3).unwrap().0;
            let lm = core_apply(kind, &minus, &ksub, 3).unwrap().0;
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - dscores[i]).abs() < 1e-5,
                "{kind:?} dim {i}: fd {fd} vs analytic {}",
                dscores[i]
            );
        }
    }

    #[test]
    fn raising_positive_scores_lowers_the_loss() {
        // The gradient on positives should be negative (descending the loss
        // raises their scores) on average, and positive on negatives.
        let scores = vec![0.0; 6];
        let ksub = kernel(6, 4).full_matrix();
        for kind in [LkpKind::PositiveOnly, LkpKind::NegativeAware] {
            let (_, ds, _) = core_apply(kind, &scores, &ksub, 3).unwrap();
            let pos_mean: f64 = ds[..3].iter().sum::<f64>() / 3.0;
            let neg_mean: f64 = ds[3..].iter().sum::<f64>() / 3.0;
            assert!(pos_mean < 0.0, "{kind:?}: positives gradient {pos_mean}");
            assert!(neg_mean > 0.0, "{kind:?}: negatives gradient {neg_mean}");
        }
    }

    #[test]
    fn training_lifts_targets_above_negatives() {
        let mut model = mf(2, 10);
        let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel(10, 4));
        let inst = instance();
        for _ in 0..200 {
            obj.apply(&mut model, inst.as_ref());
            model.step();
        }
        let ground = inst.ground_set();
        let s = model.score_items(0, &ground);
        let pos_min = s[..3].iter().cloned().fold(f64::INFINITY, f64::min);
        let neg_max = s[3..].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            pos_min > neg_max,
            "positives {:?} should dominate negatives {:?}",
            &s[..3],
            &s[3..]
        );
    }

    #[test]
    fn nps_loss_exceeds_ps_loss_for_same_state() {
        // NPS adds a non-negative exclusion term.
        let scores = vec![0.2, -0.1, 0.4, 0.0, 0.1, -0.2];
        let ksub = kernel(6, 4).full_matrix();
        let ps = core_apply(LkpKind::PositiveOnly, &scores, &ksub, 3)
            .unwrap()
            .0;
        let nps = core_apply(LkpKind::NegativeAware, &scores, &ksub, 3)
            .unwrap()
            .0;
        assert!(nps >= ps);
    }

    #[test]
    fn compute_then_accumulate_equals_apply() {
        // The two-phase API and the one-shot `apply` must walk the model
        // through identical updates.
        let inst = instance();
        let mut model_a = mf(2, 10);
        let mut model_b = mf(2, 10); // same seed → identical weights
        let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel(10, 4));

        let mut ws = DppWorkspace::new();
        let mut out = InstanceGrad::default();
        for _ in 0..5 {
            let loss_a = obj.apply(&mut model_a, inst.as_ref());
            model_a.step();
            <LkpObjective as Objective<lkp_models::MatrixFactorization>>::compute_into(
                &obj,
                &model_b,
                inst.as_ref(),
                &mut ws,
                &mut out,
            );
            <LkpObjective as Objective<lkp_models::MatrixFactorization>>::accumulate(
                &obj,
                &mut model_b,
                &out,
            );
            model_b.step();
            assert_eq!(loss_a.to_bits(), out.loss.to_bits());
        }
        let ground = inst.ground_set();
        assert_eq!(
            model_a.score_items(0, &ground),
            model_b.score_items(0, &ground)
        );
    }

    #[test]
    fn lkp_objective_uses_dual_path_for_thin_kernels() {
        // d = 4 < m = 6: the staged call must route through the dual Gram.
        let obj = LkpObjective::new(LkpKind::PositiveOnly, kernel(10, 4));
        let model = mf(2, 10);
        let inst = GroundSetInstance {
            user: 0,
            positives: vec![0, 1, 2],
            negatives: vec![5, 6, 7],
        };
        let mut ws = DppWorkspace::new();
        let mut out = InstanceGrad::default();
        out.reset_for(inst.as_ref());
        model.score_items_into(inst.user, &out.items, &mut out.scores);
        obj.kernel()
            .submatrix_into(&out.items, &mut ws.k_sub)
            .unwrap();
        obj.kernel()
            .gather_rows_into(&out.items, &mut ws.factor_rows)
            .unwrap();
        let res = ws
            .tailored_loss_grad_staged(&out.scores, 3, false, true, KERNEL_JITTER, SCORE_CLAMP)
            .unwrap();
        assert_eq!(res.path, lkp_dpp::SpectrumPath::Dual);
    }

    #[test]
    fn rbf_objective_embedding_gradients_match_finite_difference() {
        // End-to-end check through the MF model: perturb an item embedding
        // entry, the loss change must match the computed gradient.
        let model = mf(2, 10);
        let inst = instance();
        let sigma = 0.9;
        let kind = LkpKind::PositiveOnly;
        let ground = inst.ground_set();
        let obj = LkpRbfObjective::new(kind, sigma);

        let loss_of = |m: &lkp_models::MatrixFactorization| {
            let mut ws = DppWorkspace::new();
            let mut out = InstanceGrad::default();
            obj.compute_into(m, inst.as_ref(), &mut ws, &mut out);
            out.loss
        };

        // Analytic embedding gradient for ground index 1 via compute_into.
        let mut ws = DppWorkspace::new();
        let mut out = InstanceGrad::default();
        obj.compute_into(&model, inst.as_ref(), &mut ws, &mut out);
        let dim = out.embed_dim;
        let i = 1;
        let de = &out.embed_grads[i * dim..(i + 1) * dim];
        let dscores = out.dscores.clone();

        // Finite difference on embedding dims 0..3. The *score* also depends
        // on the item embedding (s = <p,q>), so FD sees both paths; subtract
        // the score path to isolate the kernel path.
        let h = 1e-6;
        let mut bumped = mf(2, 10); // same seed → identical weights
        for d in 0..3 {
            let item = ground[i];
            let orig = bumped.item_embedding(item)[d];
            let p_u = bumped.user_embedding(inst.user).to_vec();
            let score_path = dscores[i] * p_u[d];
            set_item_dim(&mut bumped, item, d, orig + h);
            let lp = loss_of(&bumped);
            set_item_dim(&mut bumped, item, d, orig - h);
            let lm = loss_of(&bumped);
            set_item_dim(&mut bumped, item, d, orig);
            let fd = (lp - lm) / (2.0 * h);
            let kernel_path_fd = fd - score_path;
            assert!(
                (kernel_path_fd - de[d]).abs() < 1e-5,
                "dim {d}: kernel-path fd {kernel_path_fd} vs analytic {}",
                de[d]
            );
        }
    }

    #[test]
    fn grad_l_supports_diversity_chain() {
        // chain_to_diversity over the exposed ∂loss/∂L must match FD w.r.t.
        // symmetric kernel-entry perturbations (the E-type chain rule input).
        let scores = vec![0.3, -0.2, 0.5, 0.1];
        let ksub = kernel(4, 6).full_matrix();
        let k = 2;
        let (_, _, g_l) = core_apply(LkpKind::PositiveOnly, &scores, &ksub, k).unwrap();
        let q = quality(&scores);
        let dk = grad::chain_to_diversity(&g_l, &q);
        let h = 1e-6;
        for i in 0..4 {
            for j in i..4 {
                let mut plus = ksub.clone();
                let mut minus = ksub.clone();
                plus[(i, j)] += h;
                minus[(i, j)] -= h;
                if i != j {
                    plus[(j, i)] += h;
                    minus[(j, i)] -= h;
                }
                let lp = core_apply(LkpKind::PositiveOnly, &scores, &plus, k)
                    .unwrap()
                    .0;
                let lm = core_apply(LkpKind::PositiveOnly, &scores, &minus, k)
                    .unwrap()
                    .0;
                let fd = (lp - lm) / (2.0 * h);
                let analytic = if i == j {
                    dk[(i, i)]
                } else {
                    dk[(i, j)] + dk[(j, i)]
                };
                assert!(
                    (fd - analytic).abs() < 1e-5,
                    "({i},{j}): fd {fd} vs {analytic}"
                );
            }
        }
    }

    fn set_item_dim(m: &mut lkp_models::MatrixFactorization, item: usize, d: usize, v: f64) {
        let mut row = m.item_embedding(item).to_vec();
        row[d] = v;
        m.set_item_embedding_for_tests(item, &row);
    }
}
