//! Epoch-plan pipeline equivalence suite.
//!
//! The trainer's instance pipeline moved from an inline sampler
//! (`epoch_instances` + Fisher–Yates + `chunks(batch_size)`) onto the
//! `lkp-data` planning layer (flat-arena `EpochPlan`, `SamplingPolicy`,
//! size-bucketed `BatchSchedule`) with a batched eigen path under the
//! dispatch. Contracts pinned here:
//!
//! 1. The default `ResampleEachEpoch` policy is **bitwise identical** to the
//!    pre-refactor inline sampler at 1/2/4 threads (the serial inline loop
//!    is reconstructed verbatim below).
//! 2. `FrozenNegatives` + `spectral_tol > 0` records a cache hit (skip or
//!    warm start) on **every** instance revisit from epoch 2 onward.
//! 3. Frozen plans are bitwise-stable across epochs and deterministic under
//!    a fixed seed (trajectory level; the plan level is pinned in
//!    `lkp-data`'s own tests).
//! 4. Size-bucketed scheduling preserves gradient-accumulation results
//!    bitwise versus the unbucketed plan order, including on mixed-size
//!    plans the stock sampler never produces.

use lkp_core::objective::{InstanceGrad, LkpKind, LkpObjective, Objective};
use lkp_core::{train_diversity_kernel, DiversityKernelConfig, TrainConfig, Trainer};
use lkp_data::{
    BatchSchedule, Dataset, EpochPlan, GroundSetInstance, InstanceSampler, SamplingPolicy,
    SyntheticConfig, TargetSelection,
};
use lkp_dpp::DppWorkspace;
use lkp_models::{MatrixFactorization, Recommender};
use lkp_nn::AdamConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn smoke_data() -> Dataset {
    lkp_data::synthetic::generate(&SyntheticConfig {
        n_users: 40,
        n_items: 100,
        n_categories: 8,
        mean_interactions: 18.0,
        ..Default::default()
    })
}

fn model(data: &Dataset, seed: u64) -> MatrixFactorization {
    let mut rng = StdRng::seed_from_u64(seed);
    MatrixFactorization::new(
        data.n_users(),
        data.n_items(),
        16,
        AdamConfig {
            lr: 0.02,
            ..Default::default()
        },
        &mut rng,
    )
}

fn kernel(data: &Dataset) -> lkp_dpp::LowRankKernel {
    train_diversity_kernel(
        data,
        &DiversityKernelConfig {
            epochs: 3,
            pairs_per_epoch: 48,
            dim: 8,
            ..Default::default()
        },
    )
}

fn config(threads: usize, epochs: usize, policy: SamplingPolicy, tol: f64) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 32,
        k: 4,
        n: 4,
        mode: TargetSelection::Sequential,
        sampling_policy: policy,
        eval_every: 0,
        patience: 0,
        threads,
        spectral_tol: tol,
        seed: 99,
        ..Default::default()
    }
}

/// `Trainer::fit` under the given policy; returns per-epoch losses, final
/// user-0 scores, and the full report.
fn run_fit(
    data: &Dataset,
    threads: usize,
    epochs: usize,
    policy: SamplingPolicy,
    tol: f64,
) -> (Vec<f64>, Vec<f64>, lkp_core::TrainReport) {
    let mut m = model(data, 1);
    let mut obj = LkpObjective::new(LkpKind::NegativeAware, kernel(data));
    let trainer = Trainer::new(config(threads, epochs, policy, tol));
    let report = trainer.fit(&mut m, &mut obj, data);
    let losses = report.history.iter().map(|h| h.mean_loss).collect();
    let items: Vec<usize> = (0..data.n_items()).collect();
    (losses, m.score_items(0, &items), report)
}

/// The pre-refactor trainer loop, reconstructed verbatim: inline
/// `epoch_instances`, the trainer's backwards Fisher–Yates over the same RNG
/// stream, plain `chunks(batch_size)` batches, one serial workspace, serial
/// in-order accumulation (validation disabled, as in `config`).
fn run_inline_reference(data: &Dataset, epochs: usize) -> (Vec<f64>, Vec<f64>) {
    let cfg = config(1, epochs, SamplingPolicy::ResampleEachEpoch, 0.0);
    let mut m = model(data, 1);
    let obj = LkpObjective::new(LkpKind::NegativeAware, kernel(data));
    let sampler = InstanceSampler::new(cfg.k, cfg.n, cfg.mode);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut ws = DppWorkspace::new();
    let mut out = InstanceGrad::default();
    let mut losses = Vec::with_capacity(cfg.epochs);
    for _epoch in 1..=cfg.epochs {
        m.begin_epoch();
        let mut instances = sampler.epoch_instances(data, &mut rng);
        for i in (1..instances.len()).rev() {
            instances.swap(i, rng.random_range(0..=i));
        }
        let mut loss_sum = 0.0;
        let mut count = 0usize;
        for batch in instances.chunks(cfg.batch_size) {
            for inst in batch {
                obj.compute_into(&m, inst.as_ref(), &mut ws, &mut out);
                loss_sum += out.loss;
                count += 1;
                obj.accumulate(&mut m, &out);
            }
            m.step();
        }
        losses.push(if count > 0 {
            loss_sum / count as f64
        } else {
            0.0
        });
    }
    let items: Vec<usize> = (0..data.n_items()).collect();
    (losses, m.score_items(0, &items))
}

#[test]
fn resample_policy_is_bitwise_identical_to_the_inline_sampler() {
    let data = smoke_data();
    let epochs = 2;
    let (ref_losses, ref_scores) = run_inline_reference(&data, epochs);
    for threads in [1usize, 2, 4] {
        let (losses, scores, report) = run_fit(
            &data,
            threads,
            epochs,
            SamplingPolicy::ResampleEachEpoch,
            0.0,
        );
        assert_eq!(report.plan.resamples, epochs as u64);
        assert_eq!(report.plan.reuses, 0);
        for (e, (a, b)) in ref_losses.iter().zip(&losses).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "threads={threads} epoch {e}: inline {a} vs planned {b}"
            );
        }
        for (a, b) in ref_scores.iter().zip(&scores) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "threads={threads}: model diverged"
            );
        }
    }
}

#[test]
fn frozen_negatives_hits_the_cache_on_every_revisit() {
    // The acceptance criterion: with FrozenNegatives and spectral_tol =
    // 1e-8, every instance revisit from epoch 2 onward must resolve in the
    // cache (skip or warm start) — reuse ≥ (epochs − 1)/epochs of lookups.
    let data = smoke_data();
    let epochs = 4;
    for threads in [1usize, 3] {
        let (_, _, report) = run_fit(
            &data,
            threads,
            epochs,
            SamplingPolicy::FrozenNegatives,
            1e-8,
        );
        let stats = report.spectral_cache;
        let instances = report.plan.instances as u64;
        assert!(instances > 0);
        assert_eq!(report.plan.resamples, 1, "frozen plans sample once");
        assert_eq!(report.plan.reuses, epochs as u64 - 1);
        assert_eq!(
            stats.lookups(),
            epochs as u64 * instances,
            "threads={threads}: every instance consults the cache each epoch"
        );
        let hits = stats.skips + stats.warm_starts;
        assert_eq!(
            hits,
            (epochs as u64 - 1) * instances,
            "threads={threads}: every revisit from epoch 2 on must hit \
             (skips {} + warm {} vs cold {})",
            stats.skips,
            stats.warm_starts,
            stats.cold
        );
        assert_eq!(
            stats.cold, instances,
            "threads={threads}: only first visits go cold"
        );
    }
}

#[test]
fn frozen_trajectories_are_deterministic_and_distinct_from_resampling() {
    let data = smoke_data();
    let (a_losses, a_scores, _) = run_fit(&data, 4, 3, SamplingPolicy::FrozenNegatives, 1e-8);
    let (b_losses, b_scores, _) = run_fit(&data, 4, 3, SamplingPolicy::FrozenNegatives, 1e-8);
    assert_eq!(
        a_losses.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        b_losses.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "fixed seed + fixed width must reproduce bitwise"
    );
    assert_eq!(a_scores, b_scores);
    // Epoch 1 consumes the identical RNG stream under every policy, so the
    // first-epoch loss is bitwise shared; afterwards the plans diverge.
    let (r_losses, _, _) = run_fit(&data, 4, 3, SamplingPolicy::ResampleEachEpoch, 0.0);
    assert_eq!(a_losses[0].to_bits(), r_losses[0].to_bits());
    assert_ne!(
        a_losses[2].to_bits(),
        r_losses[2].to_bits(),
        "frozen and resampled runs should part ways after epoch 1"
    );
}

#[test]
fn periodic_refresh_reuses_within_and_resamples_across_windows() {
    let data = smoke_data();
    let epochs = 5;
    let (_, _, report) = run_fit(
        &data,
        2,
        epochs,
        SamplingPolicy::PeriodicRefresh { period: 2 },
        1e-8,
    );
    // Epochs 1,3,5 resample; 2,4 reuse.
    assert_eq!(report.plan.resamples, 3);
    assert_eq!(report.plan.reuses, 2);
    // Reused epochs revisit every instance: at least those lookups hit.
    let stats = report.spectral_cache;
    assert!(
        stats.skips + stats.warm_starts >= 2 * report.plan.instances as u64,
        "reused epochs must hit the cache: {stats:?}"
    );
}

/// Mixed-size plan: interleaved (2,2) and (3,3) instances over real users —
/// a shape the stock sampler never emits but the scheduler must handle.
fn mixed_plan(data: &Dataset) -> EpochPlan {
    let mut instances = Vec::new();
    for i in 0..24usize {
        let user = i % data.n_users();
        let train = data.user_items(user, lkp_data::Split::Train);
        if train.len() < 3 {
            continue;
        }
        let k = if i % 2 == 0 { 2 } else { 3 };
        let positives: Vec<usize> = train[..k].to_vec();
        let negatives: Vec<usize> = (0..k)
            .map(|j| {
                // Deterministic unobserved items.
                let mut cand = (i * 7 + j * 13) % data.n_items();
                while data.is_observed(user, cand) {
                    cand = (cand + 1) % data.n_items();
                }
                cand
            })
            .collect();
        // Negatives must be distinct for a sane instance.
        let mut distinct = negatives.clone();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() != negatives.len() {
            continue;
        }
        instances.push(GroundSetInstance {
            user,
            positives,
            negatives,
        });
    }
    EpochPlan::from_instances(&instances)
}

#[test]
fn bucketed_scheduling_preserves_gradient_accumulation_bitwise() {
    // Computing a batch's gradients in dispatch (size-bucketed) order and
    // accumulating through `slot_of` must reproduce the naive plan-order
    // loop bit for bit — on a genuinely mixed-size plan where the dispatch
    // order really does differ from plan order.
    let data = smoke_data();
    let kern = kernel(&data);
    let plan = mixed_plan(&data);
    assert!(plan.len() >= 12, "mixed plan too small to be meaningful");
    assert_eq!(plan.distinct_sizes(), 2);
    let batch_size = 7; // Odd size forces batches mixing both shapes.
    let schedule = BatchSchedule::build(&plan, batch_size);
    assert!(
        schedule.iter().any(|b| !b.bounds.is_empty()),
        "schedule must actually bucket something"
    );
    let obj = LkpObjective::new(LkpKind::PositiveOnly, kern);

    // Naive plan-order reference.
    let mut m_ref = model(&data, 3);
    let mut ws = DppWorkspace::new();
    let mut out = InstanceGrad::default();
    let mut ref_losses = Vec::new();
    let mut start = 0;
    while start < plan.len() {
        let end = (start + batch_size).min(plan.len());
        for idx in start..end {
            obj.compute_into(&m_ref, plan.instance(idx), &mut ws, &mut out);
            ref_losses.push(out.loss);
            obj.accumulate(&mut m_ref, &out);
        }
        m_ref.step();
        start = end;
    }

    // Scheduled order: compute per dispatch slot, accumulate via slot_of.
    let mut m_sched = model(&data, 3);
    let mut grads: Vec<InstanceGrad> = (0..batch_size).map(|_| InstanceGrad::default()).collect();
    let mut sched_losses = Vec::new();
    for batch in schedule.iter() {
        for (slot, &idx) in batch.dispatch.iter().enumerate() {
            obj.compute_into(&m_sched, plan.instance(idx), &mut ws, &mut grads[slot]);
        }
        for &slot in batch.slot_of {
            sched_losses.push(grads[slot].loss);
            obj.accumulate(&mut m_sched, &grads[slot]);
        }
        m_sched.step();
    }

    assert_eq!(ref_losses.len(), sched_losses.len());
    for (i, (a, b)) in ref_losses.iter().zip(&sched_losses).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "instance {i}: loss moved");
    }
    let items: Vec<usize> = (0..data.n_items()).collect();
    let (sa, sb) = (m_ref.score_items(0, &items), m_sched.score_items(0, &items));
    for (a, b) in sa.iter().zip(&sb) {
        assert_eq!(a.to_bits(), b.to_bits(), "model weights diverged");
    }
}
