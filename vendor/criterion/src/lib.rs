//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the slice of the criterion API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`],
//! `criterion_group!`/`criterion_main!` and `black_box` — on top of plain
//! `std::time::Instant` timing.
//!
//! Measurement model: after a warm-up period, each benchmark runs
//! `sample_size` samples; each sample times a fixed iteration batch sized so
//! one sample costs roughly `measurement_time / sample_size`. The median
//! per-iteration time is reported, which is robust to scheduler noise.
//!
//! Output goes to stdout, one line per benchmark:
//!
//! ```text
//! bench: <id>  median: <t> ns/iter  (min <t>, max <t>, <n> samples)
//! ```
//!
//! With `CRITERION_JSON=<path>` set, a JSON line per benchmark is appended
//! to `<path>` — `scripts/bench_snapshot.sh` uses this to build the
//! `BENCH_<date>.json` trajectory snapshots.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `<name>/<parameter>`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    /// Identifier consisting of the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: &'a mut Duration,
}

impl Bencher<'_> {
    /// Times `routine` over this sample's iteration batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        *self.elapsed = start.elapsed();
    }
}

/// Measurement settings shared by [`Criterion`] and [`BenchmarkGroup`].
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 50,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

/// The benchmark harness.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
            _parent: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, &self.settings, f);
        self
    }
}

/// A named group of benchmarks with shared measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Sets the measurement duration budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Benchmarks a closure under `<group>/<id>`.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, &self.settings, f);
        self
    }

    /// Benchmarks a closure receiving a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, &self.settings, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher<'_>)>(id: &str, settings: &Settings, mut f: F) {
    // Warm-up: run single-iteration samples until the warm-up budget is
    // spent, estimating the per-iteration cost as we go.
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < settings.warm_up_time || warm_iters == 0 {
        let mut elapsed = Duration::ZERO;
        let mut b = Bencher {
            iters: 1,
            elapsed: &mut elapsed,
        };
        f(&mut b);
        warm_iters += 1;
        per_iter = warm_start.elapsed() / warm_iters as u32;
    }

    // Size each sample so the whole measurement roughly fits the budget.
    let budget_per_sample = settings.measurement_time / settings.sample_size as u32;
    let iters_per_sample = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, u64::MAX as u128) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut elapsed = Duration::ZERO;
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: &mut elapsed,
        };
        f(&mut b);
        samples_ns.push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = samples_ns[samples_ns.len() / 2];
    let min = samples_ns[0];
    let max = *samples_ns.last().expect("non-empty samples");

    println!(
        "bench: {id}  median: {median:.1} ns/iter  (min {min:.1}, max {max:.1}, {} samples)",
        samples_ns.len()
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = writeln!(
                    file,
                    "{{\"bench\":\"{id}\",\"median_ns\":{median:.1},\"min_ns\":{min:.1},\"max_ns\":{max:.1},\"samples\":{}}}",
                    samples_ns.len()
                );
            }
        }
    }
}

/// Groups benchmark functions under one callable, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("algo", 7).to_string(), "algo/7");
        assert_eq!(BenchmarkId::from_parameter(12).to_string(), "12");
    }

    #[test]
    fn harness_times_a_trivial_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut acc = 0u64;
        group.bench_function("add", |b| {
            b.iter(|| {
                acc = acc.wrapping_add(black_box(1));
                acc
            })
        });
        group.finish();
        assert!(acc > 0);
    }
}
