//! `lkp-runtime` — the shared execution substrate for every parallel phase.
//!
//! Before this crate, each parallel consumer (trainer mini-batches, the
//! evaluation harness) spawned fresh `std::thread::scope` workers per call.
//! That is correct but re-pays thread spawn/join on every mini-batch, caps
//! scaling on many-core hosts, and leaves no persistent execution layer a
//! request-serving path could sit on. This crate extracts the pattern into
//! one [`WorkerPool`]:
//!
//! * **Persistent** — worker threads are spawned once and parked on a
//!   condvar between jobs; a fork-join dispatch costs one mutex round-trip
//!   instead of `n` thread spawns.
//! * **Per-worker reusable state** — every worker owns a [`WorkerState`]
//!   (a typed slot map) that survives across jobs, so consumers keep their
//!   scratch buffers (`DppWorkspace`, score vectors, kernel caches, …) warm
//!   for the whole lifetime of the pool instead of per batch.
//! * **Deterministic fork-join** — [`WorkerPool::run`] executes one closure
//!   per worker over statically partitioned chunks and does not return until
//!   every worker finished, exactly like `std::thread::scope`. Consumers
//!   that accumulate results in chunk order therefore produce results
//!   **identical at any thread count**, including 1 (where no thread other
//!   than the caller ever runs).
//!
//! The caller participates as worker 0, so a pool of `n` threads spawns only
//! `n − 1` background workers and a single-threaded pool spawns none — the
//! serial path stays a plain inline loop.

mod plan;
mod pool;
mod state;

pub use plan::TaskPlan;
pub use pool::WorkerPool;
pub use state::WorkerState;

/// Resolves a requested thread budget: `0` means "use the host parallelism",
/// anything else is taken literally (clamped to at least 1).
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_threads_zero_is_host_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
