//! NeuMF: neural matrix factorization (He et al., WWW 2017).
//!
//! Two towers over separate embedding tables:
//!
//! * **GMF** — element-wise product `p_u ⊙ q_i`.
//! * **MLP** — `[p'_u ; q'_i]` through ReLU layers.
//!
//! The final score is a linear head over the concatenated tower outputs. As
//! in the original paper the two towers have their own embeddings. Scores
//! are raw logits; the BCE objective (its original loss) applies the sigmoid.

use crate::Recommender;
use lkp_nn::{Activation, AdamConfig, Dense, EmbeddingTable, Mlp};
use rand::Rng;

/// NeuMF model.
#[derive(Clone)]
pub struct NeuMf {
    gmf_users: EmbeddingTable,
    gmf_items: EmbeddingTable,
    mlp_users: EmbeddingTable,
    mlp_items: EmbeddingTable,
    mlp: Mlp,
    head: Dense,
}

impl NeuMf {
    /// Builds a NeuMF with GMF dimension `dim` and an MLP tower
    /// `[2·dim → dim → dim/2]`, matching the pyramid structure of the paper.
    pub fn new<R: Rng + ?Sized>(
        n_users: usize,
        n_items: usize,
        dim: usize,
        config: AdamConfig,
        rng: &mut R,
    ) -> Self {
        let mlp_out = (dim / 2).max(1);
        NeuMf {
            gmf_users: EmbeddingTable::new(n_users, dim, 0.1, config, rng),
            gmf_items: EmbeddingTable::new(n_items, dim, 0.1, config, rng),
            mlp_users: EmbeddingTable::new(n_users, dim, 0.1, config, rng),
            mlp_items: EmbeddingTable::new(n_items, dim, 0.1, config, rng),
            mlp: Mlp::new(
                &[2 * dim, dim, mlp_out],
                Activation::ReLU,
                Activation::Identity,
                config,
                rng,
            ),
            head: Dense::new(1, dim + mlp_out, config, rng),
        }
    }

    fn score_one(&self, user: usize, item: usize) -> f64 {
        let dim = self.gmf_users.dim();
        let p = self.gmf_users.row(user);
        let q = self.gmf_items.row(item);
        let mut features = Vec::with_capacity(dim + self.mlp.out_dim());
        for d in 0..dim {
            features.push(p[d] * q[d]);
        }
        let mut x = self.mlp_users.row(user).to_vec();
        x.extend_from_slice(self.mlp_items.row(item));
        let cache = self.mlp.forward(&x);
        features.extend_from_slice(cache.output());
        self.head.forward(&features)[0]
    }
}

impl Recommender for NeuMf {
    fn n_users(&self) -> usize {
        self.gmf_users.rows()
    }

    fn n_items(&self) -> usize {
        self.gmf_items.rows()
    }

    fn score_items(&self, user: usize, items: &[usize]) -> Vec<f64> {
        items.iter().map(|&i| self.score_one(user, i)).collect()
    }

    fn score_items_into(&self, user: usize, items: &[usize], out: &mut Vec<f64>) {
        out.clear();
        out.extend(items.iter().map(|&i| self.score_one(user, i)));
    }

    fn accumulate_score_grads(&mut self, user: usize, items: &[usize], dscores: &[f64]) {
        debug_assert_eq!(items.len(), dscores.len());
        let dim = self.gmf_users.dim();
        for (&item, &ds) in items.iter().zip(dscores) {
            if ds == 0.0 {
                continue;
            }
            // Recompute the forward caches for this (user, item) pair; this
            // keeps `score_items` allocation-free for evaluation while the
            // training path pays one extra forward.
            let p = self.gmf_users.row(user).to_vec();
            let q = self.gmf_items.row(item).to_vec();
            let mut features = Vec::with_capacity(dim + self.mlp.out_dim());
            for d in 0..dim {
                features.push(p[d] * q[d]);
            }
            let mut x = self.mlp_users.row(user).to_vec();
            x.extend_from_slice(self.mlp_items.row(item));
            let cache = self.mlp.forward(&x);
            features.extend_from_slice(cache.output());

            // Head backward.
            let dfeatures = self.head.backward(&features, &[ds]);

            // GMF part: d(p⊙q) chain.
            let dp: Vec<f64> = (0..dim).map(|d| dfeatures[d] * q[d]).collect();
            let dq: Vec<f64> = (0..dim).map(|d| dfeatures[d] * p[d]).collect();
            self.gmf_users.accumulate_grad(user, &dp);
            self.gmf_items.accumulate_grad(item, &dq);

            // MLP part.
            let dmlp_out = &dfeatures[dim..];
            let dx = self.mlp.backward(&cache, dmlp_out);
            self.mlp_users.accumulate_grad(user, &dx[..dim]);
            self.mlp_items.accumulate_grad(item, &dx[dim..]);
        }
    }

    fn step(&mut self) {
        self.gmf_users.step();
        self.gmf_items.step();
        self.mlp_users.step();
        self.mlp_items.step();
        self.mlp.step();
        self.head.step();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> NeuMf {
        let mut rng = StdRng::seed_from_u64(4);
        NeuMf::new(
            5,
            8,
            8,
            AdamConfig {
                lr: 0.02,
                weight_decay: 0.0,
                ..Default::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn scoring_shape() {
        let m = model();
        assert_eq!(m.score_items(0, &[1, 2, 3]).len(), 3);
    }

    #[test]
    fn descending_negative_gradient_raises_score() {
        let mut m = model();
        let before = m.score_items(2, &[5])[0];
        for _ in 0..80 {
            m.accumulate_score_grads(2, &[5], &[-1.0]);
            m.step();
        }
        let after = m.score_items(2, &[5])[0];
        assert!(after > before + 0.5, "{before} -> {after}");
    }

    #[test]
    fn gradient_direction_separates_positive_from_negative() {
        // Push item 1 up and item 2 down for user 0; the gap must open.
        let mut m = model();
        let before = m.score_items(0, &[1, 2]);
        for _ in 0..60 {
            m.accumulate_score_grads(0, &[1, 2], &[-1.0, 1.0]);
            m.step();
        }
        let after = m.score_items(0, &[1, 2]);
        let gap_before = before[0] - before[1];
        let gap_after = after[0] - after[1];
        assert!(
            gap_after > gap_before + 1.0,
            "gap {gap_before} -> {gap_after}"
        );
    }

    #[test]
    fn embedding_gradient_matches_finite_difference() {
        let mut m = model();
        let user = 1;
        let item = 3;
        // Analytic: run backward with ds = 1, then inspect the pending grad
        // indirectly by comparing score changes under manual perturbation.
        let h = 1e-5;
        let base = m.score_items(user, &[item])[0];
        // Perturb GMF user embedding dim 0.
        let orig = m.gmf_users.row(user)[0];
        m.gmf_users.matrix_mut()[(user, 0)] = orig + h;
        let plus = m.score_items(user, &[item])[0];
        m.gmf_users.matrix_mut()[(user, 0)] = orig - h;
        let minus = m.score_items(user, &[item])[0];
        m.gmf_users.matrix_mut()[(user, 0)] = orig;
        let fd = (plus - minus) / (2.0 * h);
        // The analytic gradient of score wrt gmf_user[0] is head_w[0]*q[0]
        // (through the product feature).
        let q0 = m.gmf_items.row(item)[0];
        let w0 = m.head.weights()[(0, 0)];
        assert!((fd - w0 * q0).abs() < 1e-5, "fd {fd} vs {}", w0 * q0);
        let _ = base;
    }
}
