//! Lazy-greedy ("CELF"-style) merge for sharded greedy MAP.
//!
//! Sharded serving splits one request's candidates across N kernel shards;
//! each shard assembles only its own `O((|C|/N)²)` tailored block. What is
//! left is selecting the global top-k *as if* one dense [`crate::greedy_map_with`]
//! had run over the whole pool — bit for bit, because serving pins sharded
//! and unsharded lists identical. This module is that merge: a max-heap of
//! all candidates keyed by their (possibly stale) marginal gain, where the
//! heap top is lazily re-scored against the globally selected prefix by
//! replaying the *exact* scalar Cholesky recursion of `greedy_map_with`
//! (`e = (L_ji − ⟨c_j, c_i⟩)/d_j`, `d² -= e²`, same operand order).
//!
//! Why the lazy invariant is exact and not merely approximate: every
//! candidate's key starts at its unconditioned diagonal gain and is only
//! ever rewritten to its gain conditioned on a *prefix* of the selected
//! set. Conditioning can only shrink a gain (`d² -= e²` with `e² ≥ 0`
//! never rounds up under IEEE round-to-nearest), so every key is an upper
//! bound on the candidate's current gain. When the heap top is *fresh*
//! (conditioned on the full selected prefix), its key equals its gain and
//! upper-bounds every other key — so it is exactly the candidate the eager
//! argmax would pick, including the first-occurrence tie-break: the heap
//! orders by `(gain desc, position asc)`, and a distinct candidate with an
//! equal gain and an earlier position would sit above the top.

use lkp_linalg::Matrix;

/// Which guard regime the merge runs under — mirrors the two serving forms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MergeGuard {
    /// Dense tailored kernel: no residual floor (the eager dense path has
    /// none either); non-finite arithmetic still aborts to the fallback.
    Dense,
    /// Dual (factored) kernel: residuals are checked against the same
    /// breakdown floor as [`crate::greedy_map_dual_with`] —
    /// `-guard · max_initial_gain` — on every lazy re-score.
    Dual {
        /// Breakdown guard, the serving config's `dual_guard`.
        guard: f64,
    },
}

/// Merge result: either the workspace holds the exact global selection, or
/// the caller must abandon the sharded path and re-serve the request
/// unsharded (which is always bit-exact, by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOutcome {
    /// [`MergeLadderWorkspace::items`] / `log_det` hold the selection,
    /// bitwise identical to an unsharded greedy MAP over the same kernel.
    Merged,
    /// A non-finite gain/residual, a guard-floor trip, or the eager-trip
    /// regime (positive floor) was hit: the lazy recursion cannot promise
    /// bitwise parity with the eager one, so the caller must fall back.
    Fallback,
}

/// Reusable scratch for [`conditioned_greedy_merge`] — one per serving
/// request plan, persisted across batches. Buffers grow to steady-state
/// shape on first use; afterwards a merge performs no heap allocation.
#[derive(Debug, Default)]
pub struct MergeLadderWorkspace {
    /// Per-candidate key: marginal gain conditioned on the first
    /// `depth[i]` selected items (an upper bound on the current gain).
    d2: Vec<f64>,
    /// How many selected items candidate `i`'s key is conditioned on.
    depth: Vec<u32>,
    /// Candidate-major Cholesky rows, filled lazily to `depth[i]`.
    rows: Matrix,
    /// Selection-major copies of the winners' rows (borrow-split scratch:
    /// the dot reads a selected row while the candidate row is written).
    sel_rows: Matrix,
    /// `√gain` of each selected item, in selection order.
    sel_d: Vec<f64>,
    /// Selected candidate positions, in selection order.
    selected: Vec<u32>,
    /// Accepted marginal gains, in selection order.
    gains: Vec<f64>,
    /// Binary max-heap of candidate positions ordered by `(d2 desc, pos asc)`.
    heap: Vec<u32>,
    log_det: f64,
    /// Lazy re-scores performed by the last merge (observability: how much
    /// conditioning work the ladder actually did).
    refreshes: u64,
}

impl MergeLadderWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        MergeLadderWorkspace::default()
    }

    /// Selected candidate positions of the last merge, in selection order.
    pub fn items(&self) -> &[u32] {
        &self.selected
    }

    /// Marginal gain accepted at each step of the last merge.
    pub fn gains(&self) -> &[f64] {
        &self.gains
    }

    /// `log det(L_S)` of the last merged selection.
    pub fn log_det(&self) -> f64 {
        self.log_det
    }

    /// Lazy re-scores the last merge performed (each one extends one
    /// candidate's Cholesky row to the current selected depth).
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }
}

/// `(gain desc, position asc)` — the total order whose maximum is exactly
/// the eager argmax winner (first occurrence wins ties). Keys are finite by
/// the time they enter the heap: non-finite diagonals abort before heapify
/// and non-finite refreshed residuals abort before the sift.
#[inline]
fn heap_above(d2: &[f64], a: u32, b: u32) -> bool {
    let (da, db) = (d2[a as usize], d2[b as usize]);
    da > db || (da == db && a < b)
}

fn sift_down(d2: &[f64], heap: &mut [u32], mut i: usize) {
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut best = i;
        if l < heap.len() && heap_above(d2, heap[l], heap[best]) {
            best = l;
        }
        if r < heap.len() && heap_above(d2, heap[r], heap[best]) {
            best = r;
        }
        if best == i {
            return;
        }
        heap.swap(i, best);
        i = best;
    }
}

/// Lazy-greedy selection of `k` items from candidates `0..diag.len()`,
/// bitwise identical to the eager recursion over the same kernel — dense
/// [`crate::greedy_map_with`] under [`MergeGuard::Dense`], dual
/// [`crate::greedy_map_dual_with`] under [`MergeGuard::Dual`] (an eager
/// dual run that would report `NumericalBreakdown` makes the merge return
/// [`MergeOutcome::Fallback`] instead, with one documented exception below).
///
/// `diag` is each candidate's unconditioned marginal gain — the tailored
/// kernel's diagonal (`q_i²·K_ii + ε` dense, `⟨b_i, b_i⟩ + ε` dual) — and
/// `entry(j, i)` returns the tailored kernel entry `L_ji` between selected
/// candidate `j` and heap-top candidate `i`. Serving closes `entry` over
/// its per-shard blocks/factor rows; the merge itself is shard-agnostic.
///
/// On [`MergeOutcome::Fallback`] the workspace contents are meaningless and
/// the caller must re-serve the request on the unsharded path. One honest
/// caveat for `Dual`: the lazy ladder only guard-checks residuals it
/// actually refreshes, so for a *negative-but-above-threshold* drifting
/// candidate that never reaches the heap top, an eager run could trip the
/// floor where the merge completes. Every *selected* item's full residual
/// path is checked (selection requires a refresh to full depth), and a
/// positive floor (`guard < 0`, the fault-injection regime, where every
/// eager residual check trips) is detected eagerly at the first selection
/// with candidates remaining.
pub fn conditioned_greedy_merge<E>(
    diag: &[f64],
    k: usize,
    guard: MergeGuard,
    entry: E,
    ws: &mut MergeLadderWorkspace,
) -> MergeOutcome
where
    E: Fn(usize, usize) -> f64,
{
    let m = diag.len();
    let k = k.min(m);
    ws.d2.clear();
    ws.d2.extend_from_slice(diag);
    ws.refreshes = 0;
    // A non-finite diagonal feeds the eager argmax's NaN-skip corner (its
    // comparison semantics, not a meaningful selection); only the eager run
    // itself reproduces that, so hand the request back.
    if ws.d2.iter().any(|d| !d.is_finite()) {
        return MergeOutcome::Fallback;
    }
    let floor = match guard {
        MergeGuard::Dense => f64::NEG_INFINITY,
        MergeGuard::Dual { guard } => {
            // Same scale rule as `greedy_map_dual_with`: the max is
            // order-independent over finite values, so computing it from
            // the merged diagonal matches the eager run bit for bit.
            let scale = ws.d2.iter().cloned().fold(0.0_f64, f64::max);
            -guard * scale.max(f64::MIN_POSITIVE)
        }
    };
    ws.depth.clear();
    ws.depth.resize(m, 0);
    ws.rows.reset(m, k.max(1));
    ws.sel_rows.reset(k.max(1), k.max(1));
    ws.sel_d.clear();
    ws.selected.clear();
    ws.gains.clear();
    ws.log_det = 0.0;
    ws.heap.clear();
    ws.heap.extend(0..m as u32);
    for i in (0..m / 2).rev() {
        sift_down(&ws.d2, &mut ws.heap, i);
    }

    while ws.selected.len() < k && !ws.heap.is_empty() {
        let top = ws.heap[0] as usize;
        let t1 = ws.selected.len();
        if ws.depth[top] as usize == t1 {
            // Fresh top: exactly the eager argmax winner (see module docs).
            let gain = ws.d2[top];
            if !gain.is_finite() {
                return MergeOutcome::Fallback;
            }
            if gain <= 1e-12 {
                // Rank exhausted — the fresh top's key upper-bounds every
                // other candidate's gain, so the eager run breaks here too.
                break;
            }
            if floor > 0.0 && m > t1 + 1 {
                // Positive floor (negative guard): the eager dual run trips
                // its residual check on the first update after this
                // selection. Defer to the fallback so the fault-injection
                // path stays bit-identical to unsharded serving.
                return MergeOutcome::Fallback;
            }
            ws.log_det += gain.ln();
            ws.gains.push(gain);
            ws.sel_d.push(gain.sqrt());
            let row = ws.rows.row(top);
            ws.sel_rows.row_mut(t1)[..t1].copy_from_slice(&row[..t1]);
            ws.selected.push(top as u32);
            let last = ws.heap.pop().expect("heap non-empty");
            if !ws.heap.is_empty() {
                ws.heap[0] = last;
                sift_down(&ws.d2, &mut ws.heap, 0);
            }
        } else {
            // Stale top: extend its Cholesky row to the current depth with
            // the exact arithmetic of `greedy_map_with`'s update loop.
            let t0 = ws.depth[top] as usize;
            for t in t0..t1 {
                let l_ji = entry(ws.selected[t] as usize, top);
                let mut dot = 0.0;
                for (a, b) in ws.sel_rows.row(t)[..t].iter().zip(ws.rows.row(top).iter()) {
                    dot += a * b;
                }
                let e = (l_ji - dot) / ws.sel_d[t];
                ws.rows.row_mut(top)[t] = e;
                let nd = ws.d2[top] - e * e;
                ws.d2[top] = nd;
                if !nd.is_finite() || nd < floor {
                    return MergeOutcome::Fallback;
                }
            }
            ws.depth[top] = t1 as u32;
            ws.refreshes += 1;
            sift_down(&ws.d2, &mut ws.heap, 0);
        }
    }
    MergeOutcome::Merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{greedy_map_dual_with, greedy_map_with, DualMapWorkspace, MapWorkspace};
    use lkp_linalg::ops;

    /// A synthetic PSD tailored kernel `L = Diag(q)·VVᵀ·Diag(q) + ε·I`
    /// assembled exactly like the serving path.
    fn tailored(m: usize, d: usize, seed: usize, jitter: f64) -> Matrix {
        let v = Matrix::from_fn(m, d, |r, c| {
            (((r * 31 + c * 17 + seed * 13) % 23) as f64) * 0.11 - 1.1
        });
        let q: Vec<f64> = (0..m)
            .map(|i| 0.5 + (((i * 7 + seed * 3) % 9) as f64) * 0.2)
            .collect();
        let mut l = Matrix::zeros(m, m);
        for i in 0..m {
            let qi = q[i];
            l[(i, i)] = qi * ops::dot(v.row(i), v.row(i)) * qi + jitter;
            for j in (i + 1)..m {
                let qj = q[j];
                let kij = ops::dot(v.row(i), v.row(j));
                let avg = 0.5 * (qi * kij * qj + qj * kij * qi);
                l[(i, j)] = avg;
                l[(j, i)] = avg;
            }
        }
        l
    }

    fn factor(m: usize, d: usize, seed: usize) -> Matrix {
        Matrix::from_fn(m, d, |r, c| {
            (((r * 29 + c * 13 + seed * 7) % 19) as f64) * 0.13 - 1.2
        })
    }

    fn assert_matches_dense(l: &Matrix, k: usize, ws: &mut MergeLadderWorkspace, label: &str) {
        let m = l.rows();
        let k = k.min(m); // serving clamps k = top_n.min(m) before either path
        let diag: Vec<f64> = (0..m).map(|i| l[(i, i)]).collect();
        let got = conditioned_greedy_merge(&diag, k, MergeGuard::Dense, |j, i| l[(j, i)], ws);
        assert_eq!(got, MergeOutcome::Merged, "{label}");
        let mut eager = MapWorkspace::new();
        greedy_map_with(l, k, &mut eager).unwrap();
        let merged: Vec<usize> = ws.items().iter().map(|&i| i as usize).collect();
        assert_eq!(merged, eager.items(), "{label}: selection diverged");
        assert_eq!(
            ws.log_det().to_bits(),
            eager.log_det().to_bits(),
            "{label}: log_det bits diverged"
        );
        for (a, b) in ws.gains().iter().zip(eager.gains()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{label}: gain bits diverged");
        }
    }

    #[test]
    fn dense_merge_matches_eager_greedy_bitwise() {
        let mut ws = MergeLadderWorkspace::new();
        for seed in 0..6 {
            for (m, d) in [(1, 3), (2, 3), (7, 4), (16, 5), (24, 6)] {
                for k in [0, 1, 3, m] {
                    let l = tailored(m, d, seed, 1e-6);
                    assert_matches_dense(&l, k, &mut ws, &format!("m={m} d={d} seed={seed} k={k}"));
                }
            }
        }
    }

    #[test]
    fn dense_merge_handles_ties_and_duplicates() {
        // Duplicate rows create exact gain ties and rank exhaustion: the
        // merge must pick the earlier position and break where eager breaks.
        let mut ws = MergeLadderWorkspace::new();
        for seed in 0..4 {
            let base = tailored(6, 3, seed, 0.0);
            let mut l = Matrix::zeros(12, 12);
            for i in 0..12 {
                for j in 0..12 {
                    l[(i, j)] = base[(i % 6, j % 6)];
                }
            }
            assert_matches_dense(&l, 8, &mut ws, &format!("dup seed={seed}"));
        }
    }

    #[test]
    fn dense_merge_rank_deficient_stops_where_eager_stops() {
        // d < m: the kernel has rank ≤ d (+ jitter), so selection exhausts.
        let mut ws = MergeLadderWorkspace::new();
        for seed in 0..4 {
            let l = tailored(14, 2, seed, 0.0);
            assert_matches_dense(&l, 10, &mut ws, &format!("deficient seed={seed}"));
        }
    }

    #[test]
    fn dual_merge_matches_eager_dual_bitwise() {
        let mut ws = MergeLadderWorkspace::new();
        for seed in 0..6 {
            for (m, d) in [(2, 4), (9, 4), (20, 6)] {
                for k in [1, 4.min(m), m] {
                    let b = factor(m, d, seed);
                    let jitter = 1e-6;
                    let diag: Vec<f64> = (0..m)
                        .map(|i| ops::dot(b.row(i), b.row(i)) + jitter)
                        .collect();
                    let guard = crate::DUAL_BREAKDOWN_GUARD;
                    let got = conditioned_greedy_merge(
                        &diag,
                        k,
                        MergeGuard::Dual { guard },
                        |j, i| ops::dot(b.row(j), b.row(i)),
                        &mut ws,
                    );
                    assert_eq!(got, MergeOutcome::Merged, "m={m} seed={seed} k={k}");
                    let mut eager = DualMapWorkspace::new();
                    eager.guard = guard;
                    greedy_map_dual_with(&b, jitter, k, &mut eager).unwrap();
                    let merged: Vec<usize> = ws.items().iter().map(|&i| i as usize).collect();
                    assert_eq!(merged, eager.items(), "m={m} seed={seed} k={k}");
                    assert_eq!(ws.log_det().to_bits(), eager.log_det().to_bits());
                }
            }
        }
    }

    #[test]
    fn dual_merge_falls_back_where_injected_guard_trips() {
        // guard < 0 → positive floor: every eager residual check trips, and
        // the merge must hand the request back instead of completing lazily.
        let b = factor(8, 4, 1);
        let diag: Vec<f64> = (0..8)
            .map(|i| ops::dot(b.row(i), b.row(i)) + 1e-6)
            .collect();
        let mut ws = MergeLadderWorkspace::new();
        let got = conditioned_greedy_merge(
            &diag,
            3,
            MergeGuard::Dual { guard: -1.0 },
            |j, i| ops::dot(b.row(j), b.row(i)),
            &mut ws,
        );
        assert_eq!(got, MergeOutcome::Fallback);
        let mut eager = DualMapWorkspace::new();
        eager.guard = -1.0;
        assert!(greedy_map_dual_with(&b, 1e-6, 3, &mut eager).is_err());
    }

    #[test]
    fn non_finite_diag_falls_back() {
        let mut ws = MergeLadderWorkspace::new();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let diag = [1.0, bad, 2.0];
            let got = conditioned_greedy_merge(&diag, 2, MergeGuard::Dense, |_, _| 0.0, &mut ws);
            assert_eq!(got, MergeOutcome::Fallback);
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs_bitwise() {
        // One workspace driven through different shapes keeps matching a
        // fresh one exactly — the serving path reuses a single ladder.
        let mut reused = MergeLadderWorkspace::new();
        for (m, d, seed, k) in [(10, 4, 0, 4), (3, 2, 1, 3), (18, 5, 2, 7), (2, 2, 3, 1)] {
            let l = tailored(m, d, seed, 1e-6);
            let diag: Vec<f64> = (0..m).map(|i| l[(i, i)]).collect();
            let got = conditioned_greedy_merge(
                &diag,
                k,
                MergeGuard::Dense,
                |j, i| l[(j, i)],
                &mut reused,
            );
            assert_eq!(got, MergeOutcome::Merged);
            let mut fresh = MergeLadderWorkspace::new();
            conditioned_greedy_merge(&diag, k, MergeGuard::Dense, |j, i| l[(j, i)], &mut fresh);
            assert_eq!(reused.items(), fresh.items(), "m={m} seed={seed}");
            assert_eq!(reused.log_det().to_bits(), fresh.log_det().to_bits());
        }
    }

    #[test]
    fn refresh_count_is_bounded_by_work_done() {
        // Observability sanity: a merge refreshes at most once per candidate
        // per selection step (and typically far fewer — that's the point).
        let l = tailored(30, 6, 2, 1e-6);
        let diag: Vec<f64> = (0..30).map(|i| l[(i, i)]).collect();
        let mut ws = MergeLadderWorkspace::new();
        conditioned_greedy_merge(&diag, 8, MergeGuard::Dense, |j, i| l[(j, i)], &mut ws);
        assert!(ws.refreshes() <= 30 * 8);
        assert!(ws.refreshes() >= ws.items().len().saturating_sub(1) as u64);
    }
}
